#!/usr/bin/env python3
"""Fixture suite for tools/det_lint.py.

Each test writes a small, self-contained C++ snippet into a temp directory
and runs the analyzer over it, asserting on the exit code and the JSON
report. Coverage:

  * every source class in the taxonomy fires on a minimal trigger
    (unordered-iter, unstable-hash, pointer-order, libm-call, ambient-env,
    parallel-float-accum, endian-memcpy);
  * an XDEAL_DET_OK with a nonempty reason suppresses — and the reason is
    carried into the report; an empty reason fails the gate outright;
  * reachability gating: a source in a function no root can reach passes
    the default gate but fails `--all` (the nightly full-audit mode);
  * taint propagates through the call graph (root -> helper -> source) and
    the reported path names the chain;
  * a no-false-positive fixture mirroring World::KeyedObservationDelay
    (counter-mode SplitMix64 mixing, seeded Rng) produces zero findings.

CTest runs this via `python3 tests/det_lint_test.py` (see CMakeLists.txt,
test name `det_lint_fixtures`); it needs only the stdlib.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL = os.path.join(REPO, "tools", "det_lint.py")


def run_lint(snippets, extra_args=()):
    """Writes {filename: source} into a temp dir, runs det_lint over it.

    Returns (exit_code, report_dict, combined_output).
    """
    with tempfile.TemporaryDirectory(prefix="det_lint_fix_") as tmp:
        for name, src in snippets.items():
            path = os.path.join(tmp, name)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w") as f:
                f.write(src)
        report_path = os.path.join(tmp, "report.json")
        proc = subprocess.run(
            [sys.executable, TOOL, "--src", tmp, "--json", report_path,
             *extra_args],
            capture_output=True, text=True)
        report = {}
        if os.path.exists(report_path):
            with open(report_path) as f:
                report = json.load(f)
        return proc.returncode, report, proc.stdout + proc.stderr


def violation_classes(report):
    return sorted(v["class"] for v in report.get("violations", []))


class SourceClassTests(unittest.TestCase):
    """One minimal trigger per taxonomy class, each under a marked root."""

    def assert_single_violation(self, snippet, klass, detail_substr=None):
        code, report, out = run_lint({"fixture.cc": snippet})
        self.assertEqual(code, 1, out)
        self.assertEqual(violation_classes(report), [klass], out)
        if detail_substr:
            self.assertIn(detail_substr, report["violations"][0]["detail"])

    def test_unordered_iter(self):
        self.assert_single_violation("""
            #include <unordered_map>
            #include <vector>
            std::unordered_map<int, int> counts;
            XDEAL_DETERMINISTIC int Drain() {
              int total = 0;
              for (const auto& [k, v] : counts) total += v;
              return total;
            }
            """, "unordered-iter", "counts")

    def test_unstable_hash(self):
        self.assert_single_violation("""
            #include <functional>
            #include <string>
            XDEAL_DETERMINISTIC unsigned long Fold(const std::string& s) {
              return std::hash<std::string>{}(s);
            }
            """, "unstable-hash", "std::hash")

    def test_pointer_order_comparator(self):
        self.assert_single_violation("""
            #include <algorithm>
            #include <vector>
            struct Node { int weight; };
            XDEAL_DETERMINISTIC void Rank(std::vector<Node*>& nodes) {
              std::sort(nodes.begin(), nodes.end(),
                        [](Node* a, Node* b) { return a < b; });
            }
            """, "pointer-order", "pointer values")

    def test_pointer_keyed_container_iteration(self):
        self.assert_single_violation("""
            #include <map>
            struct Obs { int v; };
            std::map<Obs*, int> by_site;
            XDEAL_DETERMINISTIC int Sum() {
              int total = 0;
              for (const auto& [site, v] : by_site) total += v;
              return total;
            }
            """, "pointer-order", "by_site")

    def test_libm_call(self):
        self.assert_single_violation("""
            #include <cmath>
            XDEAL_DETERMINISTIC double Score(double x) {
              return std::log(1.0 + x);
            }
            """, "libm-call", "log")

    def test_exact_libm_functions_allowed(self):
        # sqrt/fabs/floor are exactly specified by IEEE-754 — not findings.
        code, report, out = run_lint({"fixture.cc": """
            #include <cmath>
            XDEAL_DETERMINISTIC double Norm(double x, double y) {
              return std::sqrt(std::fabs(x) + std::floor(y));
            }
            """})
        self.assertEqual(code, 0, out)
        self.assertEqual(report["violations"], [])

    def test_ambient_clock(self):
        self.assert_single_violation("""
            #include <chrono>
            XDEAL_DETERMINISTIC long Stamp() {
              auto t = std::chrono::steady_clock::now();
              return t.time_since_epoch().count();
            }
            """, "ambient-env", "steady_clock::now")

    def test_ambient_rand(self):
        self.assert_single_violation("""
            #include <cstdlib>
            XDEAL_DETERMINISTIC int Pick() { return rand() % 7; }
            """, "ambient-env", "rand")

    def test_ambient_random_device(self):
        self.assert_single_violation("""
            #include <random>
            XDEAL_DETERMINISTIC unsigned Seed() {
              std::random_device rd;
              return rd();
            }
            """, "ambient-env", "random_device")

    def test_parallel_float_accum(self):
        self.assert_single_violation("""
            #include <cstddef>
            void ParallelFor(std::size_t n, void (*fn)(std::size_t));
            XDEAL_DETERMINISTIC double Mean(std::size_t n) {
              double sum = 0.0;
              ParallelFor(n, nullptr);
              sum += 1.0;  // stand-in for the per-item merge
              return sum / n;
            }
            """, "parallel-float-accum", "sum")

    def test_serial_float_accum_allowed(self):
        # The same += with no parallel dispatch in scope is fine: a serial
        # fold has one fixed order.
        code, report, out = run_lint({"fixture.cc": """
            XDEAL_DETERMINISTIC double Mean(const double* xs, int n) {
              double sum = 0.0;
              for (int i = 0; i < n; ++i) sum += xs[i];
              return sum / n;
            }
            """})
        self.assertEqual(code, 0, out)
        self.assertEqual(report["violations"], [])

    def test_endian_memcpy(self):
        self.assert_single_violation("""
            #include <cstdint>
            #include <cstring>
            XDEAL_DETERMINISTIC std::uint64_t Load(const unsigned char* p) {
              std::uint64_t v;
              std::memcpy(&v, p, sizeof(v));
              return v;
            }
            """, "endian-memcpy", "host-endian")

    def test_endian_memcpy_snapshot_writer(self):
        # The serialization direction: a checkpoint writer that memcpy's a
        # scalar's bytes straight into the snapshot buffer bakes host
        # endianness into the artifact — restore on the other endianness
        # silently diverges. This is exactly the bug class the snapshot
        # envelope (TrafficService::Checkpoint) must avoid.
        self.assert_single_violation("""
            #include <cstdint>
            #include <cstring>
            #include <vector>
            XDEAL_DETERMINISTIC void
            Snapshot(std::vector<unsigned char>& out, std::uint64_t epoch) {
              unsigned char raw[8];
              std::memcpy(raw, &epoch, sizeof(epoch));
              out.insert(out.end(), raw, raw + 8);
            }
            """, "endian-memcpy", "host-endian")

    def test_shift_based_writer_is_clean(self):
        # The approved serialization idiom (util/serialize.h ByteWriter):
        # explicit little-endian byte shifts are endianness-independent —
        # zero findings.
        code, report, out = run_lint({"fixture.cc": """
            #include <cstdint>
            #include <vector>
            XDEAL_DETERMINISTIC void
            AppendLe(std::vector<unsigned char>& out, std::uint64_t v) {
              for (unsigned i = 0; i < 8; ++i) {
                out.push_back(static_cast<unsigned char>(v >> (8 * i)));
              }
            }
            """})
        self.assertEqual(code, 0, out)
        self.assertEqual(report["violations"], [])
        self.assertEqual(report["unreachable_findings"], [])


class SuppressionTests(unittest.TestCase):
    SNIPPET = """
        #include <unordered_set>
        std::unordered_set<int> members;
        XDEAL_DETERMINISTIC bool AllEven() {
          {REASON}
          for (int m : members) if (m % 2) return false;
          return true;
        }
        """

    def test_nonempty_reason_suppresses_and_is_reported(self):
        src = self.SNIPPET.replace("{REASON}", 'XDEAL_DET_OK("bool-returning '
                                   'universal quantifier; order cannot reach '
                                   'the result");')
        code, report, out = run_lint({"fixture.cc": src})
        self.assertEqual(code, 0, out)
        self.assertEqual(report["violations"], [])
        self.assertEqual(len(report["suppressed"]), 1, out)
        self.assertIn("universal quantifier", report["suppressed"][0]["reason"])

    def test_empty_reason_fails_the_gate(self):
        src = self.SNIPPET.replace("{REASON}", 'XDEAL_DET_OK("");')
        code, report, out = run_lint({"fixture.cc": src})
        self.assertEqual(code, 1, out)
        self.assertEqual(len(report["empty_reason_suppressions"]), 1, out)

    def test_suppression_scope_ends_with_function(self):
        # A suppression in one function must not mute a finding in the next.
        code, report, out = run_lint({"fixture.cc": """
            #include <unordered_set>
            std::unordered_set<int> members;
            XDEAL_DETERMINISTIC bool AllEven() {
              XDEAL_DET_OK("set-universal check, order-insensitive");
              for (int m : members) if (m % 2) return false;
              return true;
            }
            XDEAL_DETERMINISTIC int Total() {
              int t = 0;
              for (int m : members) t += m;
              return t;
            }
            """})
        self.assertEqual(code, 1, out)
        self.assertEqual(violation_classes(report), ["unordered-iter"], out)
        self.assertEqual(report["violations"][0]["function"], "Total")

    def test_unused_suppression_warns(self):
        code, report, out = run_lint({"fixture.cc": """
            XDEAL_DETERMINISTIC int Pure(int x) {
              XDEAL_DET_OK("nothing here needs this");
              return x * 2;
            }
            """})
        self.assertEqual(code, 0, out)
        self.assertEqual(len(report["unused_suppressions"]), 1, out)
        self.assertIn("unused", out)


class ReachabilityTests(unittest.TestCase):
    def test_unreachable_source_passes_default_gate_fails_all(self):
        snippets = {"fixture.cc": """
            #include <cstdlib>
            XDEAL_DETERMINISTIC int Root(int x) { return x + 1; }
            int DebugOnly() { return rand(); }
            """}
        code, report, out = run_lint(snippets)
        self.assertEqual(code, 0, out)
        self.assertEqual(report["violations"], [])
        self.assertEqual(len(report["unreachable_findings"]), 1, out)

        code, report, out = run_lint(snippets, extra_args=["--all"])
        self.assertEqual(code, 1, out)
        self.assertEqual(violation_classes(report), ["ambient-env"], out)

    def test_taint_propagates_through_call_graph(self):
        code, report, out = run_lint({"fixture.cc": """
            #include <cmath>
            double Kernel(double x) { return std::exp(x); }
            double Helper(double x) { return Kernel(x) + 1.0; }
            XDEAL_DETERMINISTIC double Report(double x) {
              return Helper(x) * 2.0;
            }
            """})
        self.assertEqual(code, 1, out)
        self.assertEqual(violation_classes(report), ["libm-call"], out)
        path = report["violations"][0]["path"]
        self.assertEqual(path, ["Report", "Helper", "Kernel"], out)

    def test_method_roots_resolve_across_files(self):
        code, report, out = run_lint({
            "engine.h": """
                #include <unordered_map>
                class Engine {
                 public:
                  XDEAL_DETERMINISTIC long Run();
                 private:
                  std::unordered_map<int, long> weights_;
                };
                """,
            "engine.cc": """
                #include "engine.h"
                long Engine::Run() {
                  long total = 0;
                  for (const auto& [k, w] : weights_) total += w;
                  return total;
                }
                """})
        self.assertEqual(code, 1, out)
        self.assertEqual(violation_classes(report), ["unordered-iter"], out)
        self.assertEqual(report["violations"][0]["function"], "Engine::Run")


class NoFalsePositiveTests(unittest.TestCase):
    def test_keyed_delay_pattern_is_clean(self):
        # Mirrors World::KeyedObservationDelay: counter-mode mixing of a
        # seed with stable ids through SplitMix64, then a seeded local Rng.
        # All integer arithmetic, no ambient state — zero findings expected,
        # reachable or not.
        code, report, out = run_lint({"fixture.cc": """
            #include <cstdint>
            struct SplitMix64 {
              std::uint64_t s;
              explicit SplitMix64(std::uint64_t seed) : s(seed) {}
              std::uint64_t Next() {
                std::uint64_t z = (s += 0x9E3779B97F4A7C15ULL);
                z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
                z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
                return z ^ (z >> 31);
              }
            };
            XDEAL_DETERMINISTIC std::uint64_t
            KeyedDelay(std::uint64_t seed, std::uint32_t chain,
                       std::uint32_t who, std::uint64_t tick) {
              SplitMix64 key(seed ^ 0x6b79656444656c61ULL);
              key.s ^= SplitMix64(chain).Next();
              key.s ^= SplitMix64(who).Next();
              key.s ^= SplitMix64(tick).Next();
              SplitMix64 rng(key.Next());
              return 1 + rng.Next() % 16;
            }
            """})
        self.assertEqual(code, 0, out)
        self.assertEqual(report["violations"], [])
        self.assertEqual(report["unreachable_findings"], [])

    def test_lookup_without_iteration_is_clean(self):
        # .find()/.count()/.at() on an unordered container do not depend on
        # iteration order — the exact pattern of blockchain's tag_index_.
        code, report, out = run_lint({"fixture.cc": """
            #include <unordered_map>
            #include <vector>
            std::unordered_map<unsigned long, std::vector<int>> tag_index;
            XDEAL_DETERMINISTIC const std::vector<int>*
            Lookup(unsigned long tag) {
              auto it = tag_index.find(tag);
              if (it == tag_index.end()) return nullptr;
              return &it->second;
            }
            """})
        self.assertEqual(code, 0, out)
        self.assertEqual(report["violations"], [])
        self.assertEqual(report["unreachable_findings"], [])


if __name__ == "__main__":
    unittest.main(verbosity=2)
