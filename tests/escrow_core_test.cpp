// EscrowCore: the §4 escrow state machine — pre/post conditions of escrow
// and tentative transfer, double-spend prevention, release and refund.

#include <gtest/gtest.h>

#include "chain/world.h"
#include "contracts/escrow_core.h"

namespace xdeal {
namespace {

struct EscrowFixture : public ::testing::Test {
  void SetUp() override {
    world = std::make_unique<World>(
        1, std::make_unique<SynchronousNetwork>(1, 5));
    p = world->RegisterParty("p");
    q = world->RegisterParty("q");
    r = world->RegisterParty("r");
    chain = world->CreateChain("c", 10);
    token_id = chain->Deploy(std::make_unique<FungibleToken>("TOK", p));
    registry_id = chain->Deploy(std::make_unique<TicketRegistry>(p));
    // The escrow "contract" identity (the core is a component of one).
    escrow_holder = Holder::OfContract(ContractId{7});
    gas = std::make_unique<GasMeter>();
    ctx.world = world.get();
    ctx.chain = chain;
    ctx.sender = p;
    ctx.now = 0;
    ctx.gas = gas.get();
  }

  FungibleToken* token() { return chain->As<FungibleToken>(token_id); }
  TicketRegistry* registry() { return chain->As<TicketRegistry>(registry_id); }

  std::unique_ptr<World> world;
  PartyId p, q, r;
  Blockchain* chain = nullptr;
  ContractId token_id, registry_id;
  Holder escrow_holder;
  std::unique_ptr<GasMeter> gas;
  CallContext ctx;
};

TEST_F(EscrowFixture, EscrowPostConditions) {
  // Pre: Owns(P, a).  Post: Owns(D, a) ∧ OwnsC(P, a) ∧ OwnsA(P, a).
  token()->Mint(Holder::Party(p), 100);
  token()->Approve(ctx, Holder::Party(p), Holder::Party(p), escrow_holder,
                   100);
  EscrowCore core;
  core.Bind(AssetKind::kFungible, token_id);
  ASSERT_TRUE(core.EscrowIn(ctx, escrow_holder, p, 100).ok());

  EXPECT_EQ(token()->BalanceOf(escrow_holder), 100u);  // Owns(D, a)
  EXPECT_EQ(token()->BalanceOf(Holder::Party(p)), 0u);
  EXPECT_EQ(core.OnCommitOf(p), 100u);   // OwnsC(P, a)
  EXPECT_EQ(core.EscrowedOf(p), 100u);   // OwnsA(P, a)
}

TEST_F(EscrowFixture, EscrowPreconditionOwnershipEnforced) {
  // P cannot escrow what it does not own (no balance, or no approval).
  EscrowCore core;
  core.Bind(AssetKind::kFungible, token_id);
  EXPECT_FALSE(core.EscrowIn(ctx, escrow_holder, p, 50).ok());

  token()->Mint(Holder::Party(p), 50);
  // Still no approval:
  EXPECT_FALSE(core.EscrowIn(ctx, escrow_holder, p, 50).ok());
}

TEST_F(EscrowFixture, TentativeTransferMovesCommitOwnershipOnly) {
  token()->Mint(Holder::Party(p), 100);
  token()->Approve(ctx, Holder::Party(p), Holder::Party(p), escrow_holder,
                   100);
  EscrowCore core;
  core.Bind(AssetKind::kFungible, token_id);
  ASSERT_TRUE(core.EscrowIn(ctx, escrow_holder, p, 100).ok());

  ASSERT_TRUE(core.TentativeTransfer(ctx, p, q, 60).ok());
  EXPECT_EQ(core.OnCommitOf(p), 40u);
  EXPECT_EQ(core.OnCommitOf(q), 60u);
  // Abort-ownership unchanged; the real tokens still sit with the escrow.
  EXPECT_EQ(core.EscrowedOf(p), 100u);
  EXPECT_EQ(token()->BalanceOf(escrow_holder), 100u);
}

TEST_F(EscrowFixture, TransferPreconditionOwnsC) {
  token()->Mint(Holder::Party(p), 100);
  token()->Approve(ctx, Holder::Party(p), Holder::Party(p), escrow_holder,
                   100);
  EscrowCore core;
  core.Bind(AssetKind::kFungible, token_id);
  ASSERT_TRUE(core.EscrowIn(ctx, escrow_holder, p, 100).ok());

  // Q holds nothing tentatively; cannot transfer.
  EXPECT_EQ(core.TentativeTransfer(ctx, q, r, 10).code(),
            StatusCode::kFailedPrecondition);
  // P cannot over-transfer (double spend within the deal).
  ASSERT_TRUE(core.TentativeTransfer(ctx, p, q, 100).ok());
  EXPECT_EQ(core.TentativeTransfer(ctx, p, r, 1).code(),
            StatusCode::kFailedPrecondition);
  // But Q can pass the received tentative ownership on (multi-hop).
  EXPECT_TRUE(core.TentativeTransfer(ctx, q, r, 100).ok());
  EXPECT_EQ(core.OnCommitOf(r), 100u);
}

TEST_F(EscrowFixture, ReleasePaysCommitOwners) {
  token()->Mint(Holder::Party(p), 100);
  token()->Approve(ctx, Holder::Party(p), Holder::Party(p), escrow_holder,
                   100);
  EscrowCore core;
  core.Bind(AssetKind::kFungible, token_id);
  ASSERT_TRUE(core.EscrowIn(ctx, escrow_holder, p, 100).ok());
  ASSERT_TRUE(core.TentativeTransfer(ctx, p, q, 70).ok());

  ASSERT_TRUE(core.ReleaseAll(ctx, escrow_holder).ok());
  EXPECT_TRUE(core.settled());
  EXPECT_EQ(token()->BalanceOf(Holder::Party(p)), 30u);
  EXPECT_EQ(token()->BalanceOf(Holder::Party(q)), 70u);
  EXPECT_EQ(token()->BalanceOf(escrow_holder), 0u);

  // Idempotent; further ops rejected.
  EXPECT_TRUE(core.ReleaseAll(ctx, escrow_holder).ok());
  EXPECT_EQ(core.TentativeTransfer(ctx, q, p, 1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(core.EscrowIn(ctx, escrow_holder, p, 1).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(EscrowFixture, RefundRestoresOriginalOwners) {
  token()->Mint(Holder::Party(p), 100);
  token()->Approve(ctx, Holder::Party(p), Holder::Party(p), escrow_holder,
                   100);
  EscrowCore core;
  core.Bind(AssetKind::kFungible, token_id);
  ASSERT_TRUE(core.EscrowIn(ctx, escrow_holder, p, 100).ok());
  ASSERT_TRUE(core.TentativeTransfer(ctx, p, q, 70).ok());

  // Abort: tentative transfers never happened.
  ASSERT_TRUE(core.RefundAll(ctx, escrow_holder).ok());
  EXPECT_EQ(token()->BalanceOf(Holder::Party(p)), 100u);
  EXPECT_EQ(token()->BalanceOf(Holder::Party(q)), 0u);
}

TEST_F(EscrowFixture, NftEscrowTransferRelease) {
  uint64_t t1 = registry()->Mint(Holder::Party(p), {"play", "A1", 90});
  registry()->Approve(ctx, Holder::Party(p), t1, escrow_holder);

  EscrowCore core;
  core.Bind(AssetKind::kNft, registry_id);
  ASSERT_TRUE(core.EscrowIn(ctx, escrow_holder, p, t1).ok());
  EXPECT_EQ(registry()->OwnerOf(t1), escrow_holder);
  EXPECT_EQ(core.NftCommitOwner(t1), p);
  EXPECT_EQ(core.NftRefundOwner(t1), p);

  // Tentative hop p -> q -> r.
  ASSERT_TRUE(core.TentativeTransfer(ctx, p, q, t1).ok());
  ASSERT_TRUE(core.TentativeTransfer(ctx, q, r, t1).ok());
  // p can no longer move it (double-spend within deal prevented).
  EXPECT_FALSE(core.TentativeTransfer(ctx, p, q, t1).ok());

  ASSERT_TRUE(core.ReleaseAll(ctx, escrow_holder).ok());
  EXPECT_EQ(registry()->OwnerOf(t1), Holder::Party(r));
}

TEST_F(EscrowFixture, NftRefund) {
  uint64_t t1 = registry()->Mint(Holder::Party(p), {"play", "A1", 90});
  registry()->Approve(ctx, Holder::Party(p), t1, escrow_holder);
  EscrowCore core;
  core.Bind(AssetKind::kNft, registry_id);
  ASSERT_TRUE(core.EscrowIn(ctx, escrow_holder, p, t1).ok());
  ASSERT_TRUE(core.TentativeTransfer(ctx, p, q, t1).ok());
  ASSERT_TRUE(core.RefundAll(ctx, escrow_holder).ok());
  EXPECT_EQ(registry()->OwnerOf(t1), Holder::Party(p));
}

TEST_F(EscrowFixture, EscrowChargesFourWrites) {
  // Figure 3 / §7.1: escrow = 4 storage writes (2 in transferFrom + escrow
  // map + onCommit map).
  token()->Mint(Holder::Party(p), 10);
  token()->Approve(ctx, Holder::Party(p), Holder::Party(p), escrow_holder,
                   10);
  EscrowCore core;
  core.Bind(AssetKind::kFungible, token_id);
  uint64_t writes_before = gas->storage_writes();
  ASSERT_TRUE(core.EscrowIn(ctx, escrow_holder, p, 10).ok());
  EXPECT_EQ(gas->storage_writes() - writes_before, 4u);
}

TEST_F(EscrowFixture, TransferChargesTwoWrites) {
  token()->Mint(Holder::Party(p), 10);
  token()->Approve(ctx, Holder::Party(p), Holder::Party(p), escrow_holder,
                   10);
  EscrowCore core;
  core.Bind(AssetKind::kFungible, token_id);
  ASSERT_TRUE(core.EscrowIn(ctx, escrow_holder, p, 10).ok());
  uint64_t writes_before = gas->storage_writes();
  ASSERT_TRUE(core.TentativeTransfer(ctx, p, q, 5).ok());
  EXPECT_EQ(gas->storage_writes() - writes_before, 2u);
}

TEST_F(EscrowFixture, MultipleDepositors) {
  token()->Mint(Holder::Party(p), 50);
  token()->Mint(Holder::Party(q), 30);
  token()->Approve(ctx, Holder::Party(p), Holder::Party(p), escrow_holder, 50);
  token()->Approve(ctx, Holder::Party(q), Holder::Party(q), escrow_holder, 30);
  EscrowCore core;
  core.Bind(AssetKind::kFungible, token_id);
  ASSERT_TRUE(core.EscrowIn(ctx, escrow_holder, p, 50).ok());
  ASSERT_TRUE(core.EscrowIn(ctx, escrow_holder, q, 30).ok());
  EXPECT_EQ(core.Depositors().size(), 2u);

  ASSERT_TRUE(core.TentativeTransfer(ctx, p, q, 50).ok());
  ASSERT_TRUE(core.TentativeTransfer(ctx, q, p, 30).ok());
  ASSERT_TRUE(core.ReleaseAll(ctx, escrow_holder).ok());
  EXPECT_EQ(token()->BalanceOf(Holder::Party(p)), 30u);
  EXPECT_EQ(token()->BalanceOf(Holder::Party(q)), 50u);
}

}  // namespace
}  // namespace xdeal
