// Tests for the exhaustive interleaving explorer (core/explore.h): the
// independence relation, choose-point determinism (default policy ==
// no policy == empty script), DPOR enumeration of honest and adversarial
// cells, bit-exact trace replay, thread-count independence, and the
// fault-injection seam.

#include <gtest/gtest.h>

#include "core/explore.h"
#include "core/scenario_sweep.h"

namespace xdeal {
namespace {

ScenarioSpec MakeSpec(Protocol protocol, SweepNetwork network,
                      SweepShape shape, uint64_t seed,
                      SweepAdversary adversary = SweepAdversary::kNone,
                      uint32_t position = 0) {
  ScenarioSpec sc;
  sc.seed = seed;
  sc.shape = shape;
  sc.protocol = protocol;
  sc.adversary = adversary;
  sc.network = network;
  sc.position = position;
  return sc;
}

// The smallest interesting cells: 2 parties, 1 asset, 2 transfers, 1 chain.
const SweepShape kTinyShape{2, 1, 2, 1, 0};

// The smallest cross-chain cells: 2 parties swapping 2 assets across 2
// chains. Commit requires cross-chain vote forwarding (§5.1), which is what
// the §5.3 DoS window and the fault-injection policy attack.
const SweepShape kTwoChainShape{2, 2, 3, 2, 0};

TEST(DependentEventsTest, InternalConflictsWithEverything) {
  EventLabel internal;  // kInternal
  EXPECT_TRUE(DependentEvents(internal, internal));
  EXPECT_TRUE(DependentEvents(internal, EventLabel::TxArrival(0, 1)));
  EXPECT_TRUE(DependentEvents(EventLabel::Timer(3), internal));
}

TEST(DependentEventsTest, ChainEventsConflictOnTheSameChain) {
  EXPECT_TRUE(DependentEvents(EventLabel::TxArrival(0, 1),
                              EventLabel::TxArrival(0, 2)));
  EXPECT_FALSE(DependentEvents(EventLabel::TxArrival(0, 1),
                               EventLabel::TxArrival(1, 1)));
  EXPECT_TRUE(DependentEvents(EventLabel::BlockProduction(0),
                              EventLabel::TxArrival(0, 1)));
  EXPECT_FALSE(DependentEvents(EventLabel::BlockProduction(0),
                               EventLabel::TxArrival(1, 1)));
  EXPECT_FALSE(DependentEvents(EventLabel::BlockProduction(0),
                               EventLabel::BlockProduction(1)));
}

TEST(DependentEventsTest, BlockProductionConflictsWithPartyEvents) {
  // Parties read chain state from their hooks, whatever the chain.
  EXPECT_TRUE(DependentEvents(EventLabel::BlockProduction(0),
                              EventLabel::Observation(1, 7)));
  EXPECT_TRUE(DependentEvents(EventLabel::Timer(7),
                              EventLabel::BlockProduction(0)));
}

TEST(DependentEventsTest, PartyEventsConflictOnlyOnTheSameActor) {
  EXPECT_TRUE(DependentEvents(EventLabel::Observation(0, 7),
                              EventLabel::Timer(7)));
  EXPECT_FALSE(DependentEvents(EventLabel::Observation(0, 7),
                               EventLabel::Observation(0, 8)));
  EXPECT_FALSE(DependentEvents(EventLabel::Timer(7), EventLabel::Timer(8)));
  // A mempool append is invisible to parties until block production.
  EXPECT_FALSE(DependentEvents(EventLabel::TxArrival(0, 7),
                               EventLabel::Observation(0, 7)));
}

TEST(ExploreRunTest, DefaultPolicyAndEmptyScriptMatchNoPolicy) {
  ExploreCell cell = ToExploreCell(
      MakeSpec(Protocol::kTimelock, SweepNetwork::kSynchronous, kTinyShape,
               11));
  ExploreRunResult no_policy = RunCellWithPolicy(cell, nullptr);
  DefaultChoicePolicy default_policy;
  ExploreRunResult with_default = RunCellWithPolicy(cell, &default_policy);
  ScriptedChoicePolicy empty_script((std::vector<uint32_t>()));
  ExploreRunResult with_script = RunCellWithPolicy(cell, &empty_script);

  EXPECT_TRUE(no_policy.started);
  EXPECT_EQ(no_policy.fingerprint, with_default.fingerprint);
  EXPECT_EQ(no_policy.fingerprint, with_script.fingerprint);
  EXPECT_EQ(no_policy.violation, "");
}

TEST(ExploreDealTest, HonestTimelockCellConformsInEveryOrder) {
  ExploreCell cell = ToExploreCell(
      MakeSpec(Protocol::kTimelock, SweepNetwork::kSynchronous, kTinyShape,
               11));
  ExploreOptions options;
  ExploreReport report = ExploreDeal(cell, options);

  EXPECT_TRUE(report.stats.complete);
  EXPECT_GT(report.stats.orders, 1u);
  EXPECT_EQ(report.violation_count, 0u);
  EXPECT_EQ(report.committed, report.stats.orders);
  EXPECT_EQ(report.stats.executions,
            report.stats.orders + report.stats.sleep_blocked);
}

TEST(ExploreDealTest, HonestCbcCellConformsInEveryOrder) {
  ExploreCell cell = ToExploreCell(
      MakeSpec(Protocol::kCbc, SweepNetwork::kSynchronous, kTinyShape, 11));
  ExploreOptions options;
  ExploreReport report = ExploreDeal(cell, options);

  EXPECT_TRUE(report.stats.complete);
  EXPECT_GT(report.stats.orders, 1u);
  EXPECT_EQ(report.violation_count, 0u);
  EXPECT_EQ(report.committed, report.stats.orders);
}

TEST(ExploreDealTest, ExplorationIsDeterministic) {
  ExploreCell cell = ToExploreCell(
      MakeSpec(Protocol::kTimelock, SweepNetwork::kSynchronous, kTinyShape,
               23));
  ExploreOptions options;
  ExploreReport a = ExploreDeal(cell, options);
  ExploreReport b = ExploreDeal(cell, options);

  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.stats.orders, b.stats.orders);
  EXPECT_EQ(a.stats.executions, b.stats.executions);
  EXPECT_EQ(a.Summary(), b.Summary());
}

TEST(ExploreDealTest, ReportIsBitIdenticalAcrossThreadCounts) {
  ExploreCell cell = ToExploreCell(
      MakeSpec(Protocol::kTimelock, SweepNetwork::kSynchronous, kTinyShape,
               23));
  ExploreOptions one;
  one.num_threads = 1;
  ExploreOptions four;
  four.num_threads = 4;
  ExploreReport a = ExploreDeal(cell, one);
  ExploreReport b = ExploreDeal(cell, four);

  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.stats.orders, b.stats.orders);
  EXPECT_EQ(a.stats.sleep_blocked, b.stats.sleep_blocked);
}

TEST(ExploreDealTest, AdversarialCellNeverHurtsCompliantParties) {
  // A crash-at-commit deviator: the deal must abort (or settle safely) in
  // every inequivalent order, not just the sampled one.
  ExploreCell cell = ToExploreCell(
      MakeSpec(Protocol::kTimelock, SweepNetwork::kSynchronous, kTinyShape,
               31, SweepAdversary::kCrashAtCommit, 0));
  ExploreOptions options;
  ExploreReport report = ExploreDeal(cell, options);

  EXPECT_TRUE(report.stats.complete);
  EXPECT_GT(report.stats.orders, 0u);
  EXPECT_EQ(report.violation_count, 0u);
}

TEST(ExploreDealTest, RediscoversSeededDosViolationWithReplayableTrace) {
  // The §5.3 targeted-DoS window that the seeded sweeps catch by sampling
  // (scenario_sweep_test's seeded reproducer): every party except the
  // beneficiary is cut off right after votes are cast, so the victim never
  // observes the beneficiary's vote on its outgoing chain and cannot forward
  // it — the beneficiary's chain releases while the victim's refunds.
  // The attack needs a cross-chain deal (forwarding is the casualty) and a
  // beneficiary whose incoming chain completes first (position 1 here).
  // Exhaustive enumeration proves the violation is not a sampling artifact —
  // every inequivalent order violates — and each violating order carries an
  // exact choice trace, replayable bit-for-bit.
  ExploreCell cell = ToExploreCell(
      MakeSpec(Protocol::kTimelock, SweepNetwork::kDosWindow, kTwoChainShape,
               97, SweepAdversary::kNone, /*position=*/1));
  ExploreOptions options;
  options.num_threads = 4;
  ExploreReport report = ExploreDeal(cell, options);

  EXPECT_TRUE(report.stats.complete);
  ASSERT_GT(report.violation_count, 0u);
  EXPECT_EQ(report.violation_count, report.stats.orders);  // all orders lose
  EXPECT_EQ(report.mixed, report.stats.orders);
  ASSERT_FALSE(report.violations.empty());
  const ExploreViolation& v = report.violations.front();
  EXPECT_NE(v.what.find("property1-safety"), std::string::npos);

  ExploreRunResult replay = ReplayTrace(cell, v.trace);
  EXPECT_EQ(replay.violation, v.what);
  ExploreRunResult replay2 = ReplayTrace(cell, v.trace);
  EXPECT_EQ(replay.fingerprint, replay2.fingerprint);
}

TEST(ExhaustiveSweepTest, CuratedMatrixProvesCellsAndCountsViolations) {
  SweepAxes axes;
  axes.shapes = {kTwoChainShape};
  axes.protocols = {Protocol::kTimelock, Protocol::kCbc};
  axes.adversaries = {SweepAdversary::kNone};
  axes.networks = {SweepNetwork::kSynchronous, SweepNetwork::kDosWindow};
  axes.positions = {1};  // DoS beneficiary whose incoming chain wins
  axes.seeds_per_cell = 1;

  SweepOptions options;
  options.base_seed = 7;
  options.mode = SweepMode::kExhaustive;
  options.num_threads = 4;
  ExhaustiveSweepReport report = RunExhaustiveSweep(axes, options);

  // timelock×{sync, dos} + cbc×sync (the DoS window is timelock-only).
  ASSERT_EQ(report.cells.size(), 3u);
  EXPECT_TRUE(report.complete);
  EXPECT_GT(report.orders, 0u);
  EXPECT_EQ(report.violation_cells, 1u);  // exactly the DoS cell
  for (const ExhaustiveCellOutcome& cell : report.cells) {
    if (cell.spec.network == SweepNetwork::kDosWindow) {
      EXPECT_GT(cell.report.violation_count, 0u);
    } else {
      EXPECT_EQ(cell.report.violation_count, 0u);
    }
  }
}

TEST(ExhaustiveSweepTest, ExplorabilityPredicateFiltersTheMatrix) {
  EXPECT_TRUE(ExhaustivelyExplorable(MakeSpec(
      Protocol::kTimelock, SweepNetwork::kSynchronous, kTinyShape, 1)));
  EXPECT_TRUE(ExhaustivelyExplorable(MakeSpec(
      Protocol::kCbc, SweepNetwork::kDosWindow, kTinyShape, 1)));
  EXPECT_FALSE(ExhaustivelyExplorable(MakeSpec(
      Protocol::kHtlc, SweepNetwork::kSynchronous, kTinyShape, 1)));
  EXPECT_FALSE(ExhaustivelyExplorable(MakeSpec(
      Protocol::kCbc, SweepNetwork::kPreGstAsync, kTinyShape, 1)));
  SweepShape big = kTinyShape;
  big.n_parties = 5;
  EXPECT_FALSE(ExhaustivelyExplorable(
      MakeSpec(Protocol::kTimelock, SweepNetwork::kSynchronous, big, 1)));
}

TEST(FaultInjectionTest, DroppedObservationsReachUnsampledFailures) {
  // Blind one party of a cross-chain deal to every receipt notification: a
  // failure mode outside every network model's sample space (delays are
  // finite; loss is not), so no seeded sweep can reach it — but the
  // choose-point seam can, and the checker still classifies the outcome.
  // The blinded party never observes its counterparty's vote on its outgoing
  // chain, so it cannot forward it (§5.1) and its own incoming chain times
  // out — the hand-built analog of the §5.3 DoS outcome.
  ExploreCell cell = ToExploreCell(MakeSpec(
      Protocol::kTimelock, SweepNetwork::kSynchronous, kTwoChainShape, 11));
  ExploreRunResult clean = RunCellWithPolicy(cell, nullptr);
  ASSERT_EQ(clean.violation, "");
  ASSERT_TRUE(clean.committed);

  DropRule rule;
  rule.kind = EventKind::kObservation;
  rule.actor = 0;  // the first registered party
  FaultInjectionPolicy policy({rule});
  ExploreRunResult faulty = RunCellWithPolicy(cell, &policy);

  EXPECT_GT(policy.dropped(), 0u);
  EXPECT_NE(faulty.fingerprint, clean.fingerprint);
  // The blinded party's incoming chain refunds while the sighted party's
  // releases: the commit splits, exactly the §5.3 loss shape.
  EXPECT_FALSE(faulty.committed);
  EXPECT_TRUE(faulty.mixed);

  // The same faults replay deterministically.
  FaultInjectionPolicy policy2({rule});
  ExploreRunResult faulty2 = RunCellWithPolicy(cell, &policy2);
  EXPECT_EQ(faulty.fingerprint, faulty2.fingerprint);
}

}  // namespace
}  // namespace xdeal
