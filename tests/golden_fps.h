// Golden traffic fingerprints shared by every suite that asserts
// bit-for-bit reproduction of the legacy engine.
//
// These two constants are the repo's backward-compatibility contract: any
// refactor of the traffic engine, broker pool, sharded CBC service, or
// observation API must still produce them from the exact seed/workload
// pairs below. They were captured from the pre-ProtocolDriver engine (PR
// 2's traffic_engine.cc, direct TimelockRun/CbcRun dispatch, single shared
// CBC chain) and have survived every redesign since.
//
// If a change legitimately alters the fingerprint (i.e. the observable
// wire traffic changed on purpose), update the constants HERE — once —
// and say why in the commit message. Never fork a private copy in a test.

#ifndef XDEAL_TESTS_GOLDEN_FPS_H_
#define XDEAL_TESTS_GOLDEN_FPS_H_

#include <cstdint>

namespace xdeal {

/// seed 101, 40 deals, 6 chains, default protocol mix, stock options.
inline constexpr uint64_t kGoldenFpMixedSeed101 = 0xf2e05a9b400cccdeULL;

/// seed 202, 30 deals, 4 chains, all-kCbc mix, stock options.
inline constexpr uint64_t kGoldenFpCbcSeed202 = 0x0c2664eed3179051ULL;

}  // namespace xdeal

#endif  // XDEAL_TESTS_GOLDEN_FPS_H_
