// Baseline HTLC atomic swap (§8): 2-party and k-cycle swaps commit with
// compliant parties; crash adversaries trigger refunds protecting everyone
// who follows the decreasing-timeout discipline; secrets propagate through
// on-chain claims.

#include <gtest/gtest.h>

#include "baseline/htlc_swap.h"
#include "core/env.h"

namespace xdeal {
namespace {

struct SwapFixture {
  std::unique_ptr<DealEnv> env;
  DealSpec deal;           // the equivalent deal spec (for conversion tests)
  SwapSpec swap;
  std::vector<PartyId> parties;
  std::vector<uint64_t> initial = {};
};

/// Builds a k-party cycle swap: party i pays 100 of token i to party i+1.
SwapFixture MakeCycleSwap(size_t k, uint64_t seed) {
  SwapFixture f;
  EnvConfig config;
  config.seed = seed;
  f.env = std::make_unique<DealEnv>(std::move(config));
  f.deal.deal_id = MakeDealId("cycle-swap", seed);
  for (size_t i = 0; i < k; ++i) {
    f.parties.push_back(f.env->AddParty("p" + std::to_string(i)));
  }
  f.deal.parties = f.parties;
  for (size_t i = 0; i < k; ++i) {
    ChainId chain = f.env->AddChain("chain-" + std::to_string(i));
    uint32_t asset = f.env->AddFungibleAsset(&f.deal, chain,
                                             "tok" + std::to_string(i),
                                             f.parties[i]);
    f.env->Mint(f.deal, asset, f.parties[i], 100);
    f.deal.escrows.push_back({asset, f.parties[i], 100});
    f.deal.transfers.push_back(
        {asset, f.parties[i], f.parties[(i + 1) % k], 100});
  }
  auto swap = ToSwapSpec(f.deal);
  EXPECT_TRUE(swap.ok());
  f.swap = swap.value();
  return f;
}

TEST(HtlcSwapTest, TwoPartySwapCommits) {
  SwapFixture f = MakeCycleSwap(2, 11);
  HtlcSwapRun run(&f.env->world(), f.swap, SwapConfig{});
  ASSERT_TRUE(run.Start().ok());
  f.env->world().scheduler().Run();
  SwapResult result = run.Collect();

  EXPECT_TRUE(result.all_claimed);
  EXPECT_EQ(result.claimed_legs, 2u);
  EXPECT_EQ(result.refunded_legs, 0u);
  // Each party ends with the other's tokens.
  auto* tok0 = f.env->TokenOf(f.deal, 0);
  auto* tok1 = f.env->TokenOf(f.deal, 1);
  EXPECT_EQ(tok0->BalanceOf(Holder::Party(f.parties[1])), 100u);
  EXPECT_EQ(tok1->BalanceOf(Holder::Party(f.parties[0])), 100u);
}

TEST(HtlcSwapTest, CycleSwapsCommitAcrossSizes) {
  for (size_t k : {3u, 4u, 5u, 7u}) {
    SwapFixture f = MakeCycleSwap(k, 20 + k);
    HtlcSwapRun run(&f.env->world(), f.swap, SwapConfig{});
    ASSERT_TRUE(run.Start().ok());
    f.env->world().scheduler().Run();
    SwapResult result = run.Collect();
    EXPECT_TRUE(result.all_claimed) << "k=" << k;
    for (size_t i = 0; i < k; ++i) {
      auto* token = f.env->TokenOf(f.deal, static_cast<uint32_t>(i));
      EXPECT_EQ(token->BalanceOf(Holder::Party(f.parties[(i + 1) % k])), 100u)
          << "k=" << k << " leg " << i;
    }
  }
}

TEST(HtlcSwapTest, SecretRevealedOnChain) {
  SwapFixture f = MakeCycleSwap(3, 31);
  HtlcSwapRun run(&f.env->world(), f.swap, SwapConfig{});
  ASSERT_TRUE(run.Start().ok());
  f.env->world().scheduler().Run();
  // Every claimed HTLC publishes the same preimage, and it hashes to the
  // hashlock.
  for (size_t i = 0; i < 3; ++i) {
    const HtlcContract* c = run.ContractOfLeg(i);
    ASSERT_TRUE(c->claimed());
    ASSERT_TRUE(c->revealed_secret().has_value());
    EXPECT_EQ(Sha256Digest(*c->revealed_secret()), run.hashlock());
  }
}

TEST(HtlcSwapTest, TimeoutsStrictlyDecreaseAlongCycle) {
  SwapFixture f = MakeCycleSwap(5, 32);
  HtlcSwapRun run(&f.env->world(), f.swap, SwapConfig{});
  ASSERT_TRUE(run.Start().ok());
  for (size_t i = 0; i + 1 < 5; ++i) {
    EXPECT_GT(run.TimeoutOfLeg(i), run.TimeoutOfLeg(i + 1));
  }
}

/// Crashes after funding: never claims anything.
class CrashAfterFundSwapParty : public SwapParty {
 public:
  void OnObservedReceipt(const Receipt& receipt) override {
    if (receipt.function == "deposit") {
      SwapParty::OnObservedReceipt(receipt);  // still funds on schedule
    }
    // Ignores claims: never learns/uses the secret.
  }
};

/// Never funds its own leg at all.
class NeverFundSwapParty : public SwapParty {
 public:
  void OnStart() override {}
  void OnObservedReceipt(const Receipt&) override {}
};

TEST(HtlcSwapTest, MissingFundingRefundsEveryone) {
  SwapFixture f = MakeCycleSwap(3, 33);
  PartyId deviant = f.parties[1];
  HtlcSwapRun run(&f.env->world(), f.swap, SwapConfig{},
                  [deviant](PartyId p) -> std::unique_ptr<SwapParty> {
                    if (p == deviant) {
                      return std::make_unique<NeverFundSwapParty>();
                    }
                    return nullptr;
                  });
  ASSERT_TRUE(run.Start().ok());
  f.env->world().scheduler().Run();
  SwapResult result = run.Collect();

  // Deployment stalls at the deviant; nothing downstream funds, the leader
  // never claims, every funded leg refunds.
  EXPECT_EQ(result.claimed_legs, 0u);
  EXPECT_GE(result.refunded_legs, 1u);
  for (size_t i = 0; i < 3; ++i) {
    auto* token = f.env->TokenOf(f.deal, static_cast<uint32_t>(i));
    EXPECT_EQ(token->BalanceOf(Holder::Party(f.parties[i])), 100u)
        << "leg " << i;
  }
}

TEST(HtlcSwapTest, CrashAfterFundLosesOnlyItsOwnAsset) {
  // The classic HTLC hazard: a party that funds but never claims its
  // incoming asset pays without being paid — but only the *deviating*
  // party suffers; compliant parties end whole or better.
  SwapFixture f = MakeCycleSwap(3, 34);
  PartyId deviant = f.parties[1];
  HtlcSwapRun run(&f.env->world(), f.swap, SwapConfig{},
                  [deviant](PartyId p) -> std::unique_ptr<SwapParty> {
                    if (p == deviant) {
                      return std::make_unique<CrashAfterFundSwapParty>();
                    }
                    return nullptr;
                  });
  ASSERT_TRUE(run.Start().ok());
  f.env->world().scheduler().Run();

  // Leader (p0) claimed its incoming leg (leg 2, from p2). p2 learned the
  // secret and claimed leg 1 (from p1). p1 crashed and never claimed leg 0;
  // leg 0 refunds to p0.
  EXPECT_TRUE(run.ContractOfLeg(2)->claimed());
  EXPECT_TRUE(run.ContractOfLeg(1)->claimed());
  EXPECT_TRUE(run.ContractOfLeg(0)->refunded());

  auto* tok0 = f.env->TokenOf(f.deal, 0);
  auto* tok1 = f.env->TokenOf(f.deal, 1);
  auto* tok2 = f.env->TokenOf(f.deal, 2);
  // p0: got tok2, kept tok0 (refund) — better off (deviant's loss).
  EXPECT_EQ(tok0->BalanceOf(Holder::Party(f.parties[0])), 100u);
  EXPECT_EQ(tok2->BalanceOf(Holder::Party(f.parties[0])), 100u);
  // p2 (compliant): paid tok2, received tok1 — whole.
  EXPECT_EQ(tok1->BalanceOf(Holder::Party(f.parties[2])), 100u);
  // p1 (deviant): paid tok1, claimed nothing.
  EXPECT_EQ(tok1->BalanceOf(Holder::Party(f.parties[1])), 0u);
  EXPECT_EQ(tok0->BalanceOf(Holder::Party(f.parties[1])), 0u);
}

TEST(HtlcSwapTest, WrongPreimageRejected) {
  SwapFixture f = MakeCycleSwap(2, 35);
  HtlcSwapRun run(&f.env->world(), f.swap, SwapConfig{});
  ASSERT_TRUE(run.Start().ok());
  // Inject a bogus claim racing the real protocol.
  ByteWriter w;
  w.Blob(ToBytes("not-the-secret"));
  f.env->world().Submit(f.parties[1], f.swap.legs[0].asset.chain,
                        run.ContractIdOfLeg(0), CallData{"claim", w.Take()},
                        "attack");
  f.env->world().scheduler().Run();

  // The bogus claim failed; the swap still completed.
  size_t bad = 0;
  for (uint32_t c = 0; c < f.env->world().num_chains(); ++c) {
    for (const Receipt& r : f.env->world().chain(ChainId{c})->receipts()) {
      if (r.tag == "attack") {
        EXPECT_FALSE(r.status.ok());
        ++bad;
      }
    }
  }
  EXPECT_EQ(bad, 1u);
  EXPECT_TRUE(run.Collect().all_claimed);
}

}  // namespace
}  // namespace xdeal
