// The indexed observation data path: ReceiptView/ObservationCursor semantics
// against the receipt index built at block-seal time, tag-filtered delivery
// under ObservationDelivery::kIndexed, the index-vs-full-scan differential
// oracle over seeded traffic, and golden-fingerprint parity for the migrated
// consumers in legacy broadcast mode.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "chain/blockchain.h"
#include "chain/world.h"
#include "contracts/fungible_token.h"
#include "core/traffic_engine.h"
#include "golden_fps.h"
#include "util/fingerprint.h"

namespace xdeal {
namespace {

std::unique_ptr<World> MakeWorld(uint64_t seed = 1) {
  return std::make_unique<World>(seed,
                                 std::make_unique<SynchronousNetwork>(1, 5));
}

CallData TransferCall(Holder to, uint64_t amount) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(to.kind));
  w.U32(to.id);
  w.U64(amount);
  return CallData{"transfer", w.Take()};
}

// Submits `count` self-transfers from `who` on `token`, labelled `deal_tag`.
void SubmitTagged(World* world, Blockchain* chain, PartyId who,
                  ContractId token, uint64_t deal_tag, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    world->Submit(who, chain->id(), token, TransferCall(Holder::Party(who), 1),
                  "t", deal_tag);
  }
}

TEST(ObservationApiTest, ReceiptViewMatchesManualScanByTagAndContract) {
  auto world = MakeWorld();
  PartyId alice = world->RegisterParty("alice");
  Blockchain* chain = world->CreateChain("c", 10);
  ContractId tok_a =
      chain->Deploy(std::make_unique<FungibleToken>("A", alice));
  ContractId tok_b =
      chain->Deploy(std::make_unique<FungibleToken>("B", alice));
  chain->As<FungibleToken>(tok_a)->Mint(Holder::Party(alice), 100);
  chain->As<FungibleToken>(tok_b)->Mint(Holder::Party(alice), 100);

  SubmitTagged(world.get(), chain, alice, tok_a, /*deal_tag=*/7, 3);
  SubmitTagged(world.get(), chain, alice, tok_b, /*deal_tag=*/7, 2);
  SubmitTagged(world.get(), chain, alice, tok_a, /*deal_tag=*/9, 4);
  SubmitTagged(world.get(), chain, alice, tok_a, /*deal_tag=*/0, 1);
  world->scheduler().Run();
  ASSERT_EQ(chain->receipts().size(), 10u);

  // Each view is exactly the manual filter of the unfiltered history, in
  // chain order.
  for (uint64_t tag : {0u, 7u, 9u, 999u}) {
    std::vector<uint64_t> manual;
    for (const Receipt& r : chain->receipts()) {
      if (r.deal_tag == tag) manual.push_back(r.tx_seq);
    }
    std::vector<uint64_t> view;
    for (const Receipt& r : chain->TaggedReceipts(tag)) {
      view.push_back(r.tx_seq);
    }
    EXPECT_EQ(view, manual) << "tag " << tag;
  }
  EXPECT_EQ(chain->TaggedReceipts(7).size(), 5u);
  EXPECT_EQ(chain->ContractReceipts(7, tok_a).size(), 3u);
  EXPECT_EQ(chain->ContractReceipts(7, tok_b).size(), 2u);
  EXPECT_EQ(chain->ContractReceipts(9, tok_b).size(), 0u);
  EXPECT_TRUE(chain->ContractReceipts(9, tok_b).empty());
  for (const Receipt& r : chain->ContractReceipts(9, tok_a)) {
    EXPECT_EQ(r.deal_tag, 9u);
    EXPECT_EQ(r.contract.v, tok_a.v);
  }
  EXPECT_TRUE(chain->TagIndexMatchesFullScan());
}

TEST(ObservationApiTest, ObservationCursorDrainsIncrementally) {
  auto world = MakeWorld();
  PartyId alice = world->RegisterParty("alice");
  Blockchain* chain = world->CreateChain("c", 10);
  ContractId token =
      chain->Deploy(std::make_unique<FungibleToken>("TOK", alice));
  chain->As<FungibleToken>(token)->Mint(Holder::Party(alice), 100);

  // A cursor made before any matching receipt exists is empty but stays
  // valid: later blocks feed it.
  ObservationCursor cursor = chain->MakeCursor(5);
  EXPECT_EQ(cursor.Next(), nullptr);
  EXPECT_EQ(cursor.consumed(), 0u);

  SubmitTagged(world.get(), chain, alice, token, /*deal_tag=*/5, 2);
  SubmitTagged(world.get(), chain, alice, token, /*deal_tag=*/6, 1);
  world->scheduler().Run();

  const Receipt* first = cursor.Next();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->deal_tag, 5u);
  const Receipt* second = cursor.Next();
  ASSERT_NE(second, nullptr);
  EXPECT_GT(second->tx_seq, first->tx_seq);
  EXPECT_EQ(cursor.Next(), nullptr) << "cursor must drain after 2 receipts";
  EXPECT_EQ(cursor.consumed(), 2u);

  // More blocks extend the same cursor — no rescan, no reset.
  world->scheduler().ScheduleAt(world->now() + 100, [&] {
    SubmitTagged(world.get(), chain, alice, token, /*deal_tag=*/5, 1);
  });
  world->scheduler().Run();
  const Receipt* third = cursor.Next();
  ASSERT_NE(third, nullptr);
  EXPECT_EQ(third->deal_tag, 5u);
  EXPECT_EQ(cursor.Next(), nullptr);
  EXPECT_EQ(cursor.consumed(), 3u);
  EXPECT_EQ(cursor.deal_tag(), 5u);
}

TEST(ObservationApiTest, IndexedDeliveryRoutesByTag) {
  auto world = MakeWorld();
  world->set_observation_delivery(ObservationDelivery::kIndexed);
  PartyId alice = world->RegisterParty("alice");
  PartyId bob = world->RegisterParty("bob");
  PartyId carol = world->RegisterParty("carol");
  Blockchain* chain = world->CreateChain("c", 10);
  ContractId token =
      chain->Deploy(std::make_unique<FungibleToken>("TOK", alice));
  chain->As<FungibleToken>(token)->Mint(Holder::Party(alice), 100);

  std::vector<uint64_t> bob_seen, carol_seen, unfiltered_seen;
  chain->Subscribe(world->PartyEndpoint(bob), /*deal_tag=*/1,
                   [&](const Receipt& r) { bob_seen.push_back(r.deal_tag); });
  chain->Subscribe(world->PartyEndpoint(carol), /*deal_tag=*/2,
                   [&](const Receipt& r) { carol_seen.push_back(r.deal_tag); });
  chain->Subscribe(world->PartyEndpoint(alice), [&](const Receipt& r) {
    unfiltered_seen.push_back(r.deal_tag);
  });

  SubmitTagged(world.get(), chain, alice, token, /*deal_tag=*/1, 2);
  SubmitTagged(world.get(), chain, alice, token, /*deal_tag=*/2, 3);
  SubmitTagged(world.get(), chain, alice, token, /*deal_tag=*/3, 1);
  world->scheduler().Run();

  // Filtered observers got exactly their deal's receipts; the unfiltered
  // observer still sees everything.
  EXPECT_EQ(bob_seen, (std::vector<uint64_t>{1, 1}));
  EXPECT_EQ(carol_seen, (std::vector<uint64_t>{2, 2, 2}));
  EXPECT_EQ(unfiltered_seen.size(), 6u);
}

TEST(ObservationApiTest, BroadcastDeliveryIgnoresTheFilterBitCompatibly) {
  // Under legacy broadcast delivery a tag-filtered subscription only
  // annotates — every receipt is still delivered, exactly like the
  // unfiltered overload, so migrated consumers are bit-compatible with the
  // pre-index event stream (their own tag matching remains the filter).
  auto world = MakeWorld();
  PartyId alice = world->RegisterParty("alice");
  PartyId bob = world->RegisterParty("bob");
  Blockchain* chain = world->CreateChain("c", 10);
  ContractId token =
      chain->Deploy(std::make_unique<FungibleToken>("TOK", alice));
  chain->As<FungibleToken>(token)->Mint(Holder::Party(alice), 100);

  std::vector<uint64_t> seen;
  chain->Subscribe(world->PartyEndpoint(bob), /*deal_tag=*/1,
                   [&](const Receipt& r) { seen.push_back(r.deal_tag); });
  SubmitTagged(world.get(), chain, alice, token, /*deal_tag=*/1, 1);
  SubmitTagged(world.get(), chain, alice, token, /*deal_tag=*/2, 1);
  world->scheduler().Run();
  EXPECT_EQ(seen.size(), 2u);
}

// --- the migrated traffic data path ---

TEST(ObservationApiTest, DifferentialOracleOnSeededTraffic) {
  // Indexed delivery + the post-run full-scan oracle: every chain's
  // incremental index must equal a from-scratch scan of its receipts, and
  // the workload must stay fully conformant. A mismatch lands in
  // report.violations, so empty() is the differential gate.
  TrafficOptions options;
  options.base_seed = 77;
  options.num_deals = 48;
  options.num_chains = 6;
  options.cbc_shards = 2;
  options.indexed_observation = true;
  options.fullscan_oracle = true;
  TrafficReport report = RunTraffic(options);

  EXPECT_EQ(report.committed, 48u) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  EXPECT_TRUE(report.double_spends.empty()) << report.Summary();
  EXPECT_EQ(report.untagged_gas, 0u);
}

TEST(ObservationApiTest, IndexedModeDeterministicAcrossThreadsAndShards) {
  // Indexed delivery has its own delay stream (KeyedObservationDelay — a
  // pure function of chain/observer/height), so its fingerprints differ
  // from broadcast mode by design but must be bit-stable across validation
  // thread counts, at one shard and at eight.
  for (size_t shards : {1u, 8u}) {
    TrafficOptions options;
    options.base_seed = 88;
    options.num_deals = 32;
    options.num_chains = 6;
    options.cbc_shards = shards;
    options.indexed_observation = true;
    options.fullscan_oracle = true;
    options.num_threads = 1;
    TrafficReport baseline = RunTraffic(options);
    EXPECT_EQ(baseline.committed, 32u) << "shards=" << shards << "\n"
                                       << baseline.Summary();
    EXPECT_TRUE(baseline.violations.empty()) << baseline.Summary();

    options.num_threads = 8;
    TrafficReport threaded = RunTraffic(options);
    EXPECT_EQ(threaded.fingerprint, baseline.fingerprint)
        << "shards=" << shards;
    EXPECT_EQ(threaded.Summary(), baseline.Summary());
  }
}

TEST(ObservationApiTest, FingerprintsInvariantUnderBucketPermutation) {
  // det-lint's central claim, checked dynamically: no observable result may
  // depend on the iteration order of the chain's unordered indexes. Rehash
  // permutes exactly that order (and nothing else — the maps are
  // node-based, so views keep their bucket-vector pointers). Folding the
  // observed receipt stream into a fingerprint before and after rehashes
  // with adversarial bucket counts must be bit-identical.
  auto fold_observations = [](Blockchain* chain) {
    uint64_t fp = 0x5eedULL;
    for (uint64_t tag : {7u, 9u, 0u}) {
      for (const Receipt& r : chain->TaggedReceipts(tag)) {
        fp = MixFingerprint(fp, r.tx_seq);
        fp = MixFingerprint(fp, r.gas_used);
        fp = MixFingerprint(fp, r.block_height);
        fp = MixFingerprint(fp, FingerprintString(r.function));
      }
      ObservationCursor cursor = chain->MakeCursor(tag);
      while (const Receipt* r = cursor.Next()) {
        fp = MixFingerprint(fp, r->tx_seq);
      }
    }
    return fp;
  };

  auto world = MakeWorld();
  PartyId alice = world->RegisterParty("alice");
  Blockchain* chain = world->CreateChain("c", 10);
  ContractId token =
      chain->Deploy(std::make_unique<FungibleToken>("A", alice));
  chain->As<FungibleToken>(token)->Mint(Holder::Party(alice), 100);
  SubmitTagged(world.get(), chain, alice, token, /*deal_tag=*/7, 3);
  SubmitTagged(world.get(), chain, alice, token, /*deal_tag=*/9, 4);
  SubmitTagged(world.get(), chain, alice, token, /*deal_tag=*/0, 1);
  world->scheduler().Run();
  ASSERT_EQ(chain->receipts().size(), 8u);

  const uint64_t baseline = fold_observations(chain);
  for (size_t buckets : {1u, 2u, 17u, 64u, 1031u}) {
    chain->RehashIndexes(buckets);
    EXPECT_TRUE(chain->TagIndexMatchesFullScan()) << "buckets=" << buckets;
    EXPECT_EQ(fold_observations(chain), baseline) << "buckets=" << buckets;
  }
}

TEST(ObservationApiTest, MigratedConsumersPreserveGoldenFingerprints) {
  // The consumer migration (tag-filtered subscriptions, TaggedReceipts
  // collection, indexed checker lookups) must be invisible in default
  // broadcast mode: the pre-redesign golden fingerprints reproduce
  // bit-for-bit at S=1 (both goldens) and the S=8 sharded run stays
  // conformant and replay-stable.
  {
    TrafficOptions options;
    options.base_seed = 101;
    options.num_deals = 40;
    options.num_chains = 6;
    TrafficReport report = RunTraffic(options);
    EXPECT_EQ(report.fingerprint, kGoldenFpMixedSeed101) << report.Summary();
  }
  {
    TrafficOptions options;
    options.base_seed = 202;
    options.num_deals = 30;
    options.num_chains = 4;
    options.protocol_mix = {Protocol::kCbc};
    TrafficReport report = RunTraffic(options);
    EXPECT_EQ(report.fingerprint, kGoldenFpCbcSeed202) << report.Summary();
  }
  {
    TrafficOptions options;
    options.base_seed = 202;
    options.num_deals = 30;
    options.num_chains = 4;
    options.cbc_shards = 8;
    options.protocol_mix = {Protocol::kCbc};
    TrafficReport report = RunTraffic(options);
    EXPECT_EQ(report.committed, 30u) << report.Summary();
    EXPECT_TRUE(report.violations.empty()) << report.Summary();
    TrafficReport replay = RunTraffic(options);
    EXPECT_EQ(replay.fingerprint, report.fingerprint);
  }
}

}  // namespace
}  // namespace xdeal
