// Proof-of-work CBC (§6.2): mining, segment verification, the structural
// validity of a fake proof-of-abort, and the confirmation-depth economics.

#include <gtest/gtest.h>

#include "cbc/pow.h"

namespace xdeal {
namespace {

constexpr unsigned kTestDifficulty = 10;  // ~1k hashes per block

TEST(PowTest, MiningMeetsDifficulty) {
  Hash256 genesis{};
  PowBlock block = MineBlock(genesis, Sha256Digest("entries"), 0,
                             kTestDifficulty, /*nonce_seed=*/0);
  EXPECT_TRUE(MeetsDifficulty(block.hash, kTestDifficulty));
  EXPECT_EQ(block.hash, PowBlock::ComputeHash(block.parent,
                                              block.entries_digest,
                                              block.height, block.nonce));
}

TEST(PowTest, DifficultyZeroAlwaysPasses) {
  EXPECT_TRUE(MeetsDifficulty(Sha256Digest("anything"), 0));
}

TEST(PowTest, HarderDifficultyImpliesEasier) {
  Hash256 h = MineBlock(Hash256{}, Sha256Digest("x"), 0, 12, 0).hash;
  EXPECT_TRUE(MeetsDifficulty(h, 12));
  EXPECT_TRUE(MeetsDifficulty(h, 8));  // 12 leading zero bits imply 8
}

TEST(PowTest, ChainExtendsAndVerifies) {
  PowChain chain(kTestDifficulty);
  for (int i = 0; i < 5; ++i) {
    chain.Extend(Sha256Digest("block-" + std::to_string(i)), i * 1000);
  }
  EXPECT_EQ(chain.length(), 5u);
  EXPECT_TRUE(
      PowChain::VerifySegment(chain.blocks(), kTestDifficulty).ok());

  auto proof = chain.ProofSuffix(/*k_confirmations=*/3);
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(proof.value().size(), 4u);
  EXPECT_TRUE(PowChain::VerifySegment(proof.value(), kTestDifficulty).ok());

  EXPECT_FALSE(chain.ProofSuffix(5).ok());  // not enough confirmations
}

TEST(PowTest, TamperedSegmentRejected) {
  PowChain chain(kTestDifficulty);
  for (int i = 0; i < 4; ++i) {
    chain.Extend(Sha256Digest("b" + std::to_string(i)), i * 1000);
  }
  auto blocks = chain.blocks();

  auto swapped_entries = blocks;
  swapped_entries[2].entries_digest = Sha256Digest("evil");
  EXPECT_FALSE(
      PowChain::VerifySegment(swapped_entries, kTestDifficulty).ok());

  auto broken_link = blocks;
  broken_link[2].parent = Sha256Digest("elsewhere");
  EXPECT_FALSE(PowChain::VerifySegment(broken_link, kTestDifficulty).ok());

  auto wrong_height = blocks;
  wrong_height[3].height = 7;
  EXPECT_FALSE(PowChain::VerifySegment(wrong_height, kTestDifficulty).ok());
}

TEST(PowTest, FakeAbortProofIsStructurallyValid) {
  // The §6.2 attack: Alice privately mines a fork whose blocks contain her
  // abort vote. The resulting segment passes every check a contract can
  // perform — PoW proofs are only economically, not cryptographically,
  // final. (Contrast with the BFT certificate tests in cbc_test.cc where a
  // minority fork is *rejected*.)
  PowChain honest(kTestDifficulty);
  honest.Extend(Sha256Digest("startDeal+commit-votes"), 1);
  for (int i = 0; i < 3; ++i) {
    honest.Extend(Sha256Digest("honest-" + std::to_string(i)), 100 + i);
  }

  PowChain private_fork(kTestDifficulty);
  private_fork.Extend(Sha256Digest("startDeal+ABORT-vote-by-alice"), 50);
  for (int i = 0; i < 3; ++i) {
    private_fork.Extend(Sha256Digest("private-" + std::to_string(i)),
                        500 + i);
  }

  auto honest_proof = honest.ProofSuffix(3);
  auto fake_proof = private_fork.ProofSuffix(3);
  ASSERT_TRUE(honest_proof.ok());
  ASSERT_TRUE(fake_proof.ok());
  // Both verify: a contract cannot tell which chain is canonical.
  EXPECT_TRUE(
      PowChain::VerifySegment(honest_proof.value(), kTestDifficulty).ok());
  EXPECT_TRUE(
      PowChain::VerifySegment(fake_proof.value(), kTestDifficulty).ok());
}

TEST(PowTest, AttackSimulationDeterministic) {
  PowAttackParams params;
  params.adversary_power = 0.3;
  params.confirmations = 4;
  params.seed = 99;
  PowAttackResult r1 = SimulatePrivateMiningAttack(params);
  PowAttackResult r2 = SimulatePrivateMiningAttack(params);
  EXPECT_EQ(r1.success, r2.success);
  EXPECT_EQ(r1.honest_blocks, r2.honest_blocks);
  EXPECT_EQ(r1.adversary_blocks, r2.adversary_blocks);
  // Exactly one side reached confirmations+1 first.
  EXPECT_TRUE((r1.adversary_blocks == 5) != (r1.honest_blocks == 5));
}

TEST(PowTest, AttackSuccessDecreasesWithConfirmations) {
  auto success_rate = [](double alpha, unsigned k) {
    int wins = 0;
    const int trials = 3000;
    for (int t = 0; t < trials; ++t) {
      PowAttackParams params;
      params.adversary_power = alpha;
      params.confirmations = k;
      params.seed = 1000 + t;
      if (SimulatePrivateMiningAttack(params).success) ++wins;
    }
    return static_cast<double>(wins) / trials;
  };

  double at1 = success_rate(0.3, 1);
  double at4 = success_rate(0.3, 4);
  double at8 = success_rate(0.3, 8);
  EXPECT_GT(at1, at4);
  EXPECT_GT(at4, at8);
  EXPECT_LT(at8, 0.05);
}

TEST(PowTest, AttackSuccessIncreasesWithPower) {
  auto success_rate = [](double alpha) {
    int wins = 0;
    const int trials = 3000;
    for (int t = 0; t < trials; ++t) {
      PowAttackParams params;
      params.adversary_power = alpha;
      params.confirmations = 3;
      params.seed = 5000 + t;
      if (SimulatePrivateMiningAttack(params).success) ++wins;
    }
    return static_cast<double>(wins) / trials;
  };
  EXPECT_LT(success_rate(0.1), success_rate(0.3));
  EXPECT_LT(success_rate(0.3), success_rate(0.45));
}

TEST(PowTest, AnalyticProbability) {
  EXPECT_DOUBLE_EQ(AnalyticAttackProbability(0.0, 3), 0.0);
  EXPECT_DOUBLE_EQ(AnalyticAttackProbability(0.5, 3), 1.0);
  EXPECT_DOUBLE_EQ(AnalyticAttackProbability(0.6, 3), 1.0);
  // (0.25/0.75)^(k+1), k=2 -> (1/3)^3.
  EXPECT_NEAR(AnalyticAttackProbability(0.25, 2), 1.0 / 27.0, 1e-12);
  // Monotone decreasing in k.
  for (unsigned k = 0; k < 10; ++k) {
    EXPECT_GT(AnalyticAttackProbability(0.3, k),
              AnalyticAttackProbability(0.3, k + 1));
  }
}

TEST(PowTest, ConfirmationsScaleWithDealValue) {
  // "the number of confirmations required should vary depending on the
  //  value of the deal" (§6.2).
  unsigned small = ConfirmationsForValue(100.0, 0.25, 1.0);
  unsigned medium = ConfirmationsForValue(10000.0, 0.25, 1.0);
  unsigned large = ConfirmationsForValue(1000000.0, 0.25, 1.0);
  EXPECT_LE(small, medium);
  EXPECT_LE(medium, large);
  EXPECT_GT(large, small);
  // Against a majority adversary no depth suffices.
  EXPECT_EQ(ConfirmationsForValue(100.0, 0.5, 1.0), ~0u);
}

}  // namespace
}  // namespace xdeal
