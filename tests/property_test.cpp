// Property-based sweeps (experiment E10): random well-formed deals ×
// adversary configurations × seeds, asserting the paper's properties:
//
//   Property 1 (safety):    no compliant party ends worse off — ever.
//   Property 2 (weak live): no compliant party's assets stay locked.
//   Property 3 (strong):    all-compliant runs transfer everything.
//   CBC atomicity:          commit everywhere or abort everywhere.

#include <gtest/gtest.h>

#include "core/adversaries.h"
#include "core/cbc_run.h"
#include "core/checker.h"
#include "core/deal_gen.h"
#include "core/timelock_run.h"

namespace xdeal {
namespace {

struct SweepCase {
  size_t n, m, t, chains;
  int adversary_kind;   // -1 = none; else adversary type index
  uint32_t deviant;     // party index for the adversary
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string name = "n" + std::to_string(c.n) + "m" + std::to_string(c.m) +
                     "t" + std::to_string(c.t) + "c" +
                     std::to_string(c.chains);
  if (c.adversary_kind >= 0) {
    name += "_adv" + std::to_string(c.adversary_kind) + "at" +
            std::to_string(c.deviant);
  }
  return name;
}

std::unique_ptr<TimelockParty> MakeTimelockAdversary(int kind) {
  switch (kind) {
    case 0: return std::make_unique<CrashingTimelockParty>(TlPhase::kEscrow);
    case 1: return std::make_unique<CrashingTimelockParty>(TlPhase::kTransfer);
    case 2: return std::make_unique<CrashingTimelockParty>(TlPhase::kCommit);
    case 3: return std::make_unique<VoteWithholdingParty>();
    case 4: return std::make_unique<NonForwardingParty>();
    case 5: return std::make_unique<OfflineAfterVoteParty>();
    case 6: return std::make_unique<DoubleSpendingParty>();
    case 7: return std::make_unique<ShortTransferParty>();
    case 8: return std::make_unique<LateVotingParty>(100000);
    default: return nullptr;
  }
}

std::unique_ptr<CbcParty> MakeCbcAdversary(int kind) {
  switch (kind) {
    case 0: return std::make_unique<CbcCrashBeforeVoteParty>();
    case 1: return std::make_unique<CbcAlwaysAbortParty>();
    case 2: return std::make_unique<CbcRescindRacerParty>();
    case 3: return std::make_unique<CbcFakeProofParty>();
    default: return nullptr;
  }
}

class TimelockPropertySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(TimelockPropertySweep, SafetyAndLiveness) {
  const SweepCase& c = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    EnvConfig env_config;
    env_config.seed = seed;
    DealEnv env(std::move(env_config));
    GenParams gen;
    gen.n_parties = c.n;
    gen.m_assets = c.m;
    gen.t_transfers = c.t;
    gen.num_chains = c.chains;
    gen.nft_every = 3;
    gen.seed = seed * 977;
    DealSpec spec = GenerateRandomDeal(&env, gen);

    uint32_t deviant_party = spec.parties[c.deviant % spec.parties.size()].v;
    TimelockConfig config;
    config.delta = 100;
    TimelockRun run(
        &env.world(), spec, config,
        [&](PartyId p) -> std::unique_ptr<TimelockParty> {
          if (c.adversary_kind >= 0 && p.v == deviant_party) {
            return MakeTimelockAdversary(c.adversary_kind);
          }
          return nullptr;
        });
    ASSERT_TRUE(run.Start().ok());
    DealChecker checker(&env.world(), spec,
                        run.deployment().escrow_contracts);
    checker.CaptureInitial();
    env.world().scheduler().Run();

    std::vector<PartyId> compliant;
    for (PartyId p : spec.parties) {
      if (c.adversary_kind < 0 || p.v != deviant_party) {
        compliant.push_back(p);
      }
    }
    // Property 1 and 2 must hold regardless of the adversary.
    EXPECT_TRUE(checker.SafetyHolds(compliant))
        << CaseName({GetParam(), 0}) << " seed " << seed;
    EXPECT_TRUE(checker.WeakLivenessHolds(compliant))
        << CaseName({GetParam(), 0}) << " seed " << seed;
    // Property 3 in all-compliant runs.
    if (c.adversary_kind < 0) {
      EXPECT_TRUE(checker.StrongLivenessHolds())
          << CaseName({GetParam(), 0}) << " seed " << seed;
    }
  }
}

std::vector<SweepCase> TimelockCases() {
  std::vector<SweepCase> cases;
  // All-compliant shapes.
  for (auto [n, m, t, ch] : std::initializer_list<std::array<size_t, 4>>{
           {2, 1, 2, 1}, {3, 2, 5, 2}, {4, 3, 8, 3}, {5, 5, 10, 2},
           {7, 4, 12, 3}}) {
    cases.push_back(SweepCase{n, m, t, ch, -1, 0});
  }
  // Every adversary kind at two different positions on a 4-party deal.
  for (int kind = 0; kind <= 8; ++kind) {
    cases.push_back(SweepCase{4, 3, 8, 2, kind, 0});
    cases.push_back(SweepCase{4, 3, 8, 2, kind, 2});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Deals, TimelockPropertySweep,
                         ::testing::ValuesIn(TimelockCases()), CaseName);

class CbcPropertySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CbcPropertySweep, AtomicityAndSafety) {
  const SweepCase& c = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    EnvConfig env_config;
    env_config.seed = seed;
    DealEnv env(std::move(env_config));
    GenParams gen;
    gen.n_parties = c.n;
    gen.m_assets = c.m;
    gen.t_transfers = c.t;
    gen.num_chains = c.chains;
    gen.seed = seed * 1931;
    DealSpec spec = GenerateRandomDeal(&env, gen);

    CbcService::Options service_options;
    service_options.validator_seed = "sweep";
    CbcService service(&env.world(), service_options);
    uint32_t deviant_party = spec.parties[c.deviant % spec.parties.size()].v;
    CbcRun run(&env.world(), spec, CbcConfig{}, &service,
               [&](PartyId p) -> std::unique_ptr<CbcParty> {
                 if (c.adversary_kind >= 0 && p.v == deviant_party) {
                   return MakeCbcAdversary(c.adversary_kind);
                 }
                 return nullptr;
               });
    ASSERT_TRUE(run.Start().ok());
    DealChecker checker(&env.world(), spec,
                        run.deployment().escrow_contracts);
    checker.CaptureInitial();
    env.world().scheduler().Run();

    CbcResult result = run.Collect();
    EXPECT_TRUE(result.atomic) << CaseName({GetParam(), 0}) << " seed "
                               << seed;
    EXPECT_TRUE(checker.Atomic());

    std::vector<PartyId> compliant;
    for (PartyId p : spec.parties) {
      if (c.adversary_kind < 0 || p.v != deviant_party) {
        compliant.push_back(p);
      }
    }
    EXPECT_TRUE(checker.SafetyHolds(compliant))
        << CaseName({GetParam(), 0}) << " seed " << seed;
    EXPECT_TRUE(checker.WeakLivenessHolds(compliant))
        << CaseName({GetParam(), 0}) << " seed " << seed;
    if (c.adversary_kind < 0) {
      EXPECT_EQ(result.outcome, kDealCommitted)
          << CaseName({GetParam(), 0}) << " seed " << seed;
      EXPECT_TRUE(checker.StrongLivenessHolds())
          << CaseName({GetParam(), 0}) << " seed " << seed;
    }
  }
}

std::vector<SweepCase> CbcCases() {
  std::vector<SweepCase> cases;
  for (auto [n, m, t, ch] : std::initializer_list<std::array<size_t, 4>>{
           {2, 1, 2, 1}, {3, 2, 5, 2}, {4, 4, 8, 3}, {6, 3, 10, 2}}) {
    cases.push_back(SweepCase{n, m, t, ch, -1, 0});
  }
  for (int kind = 0; kind <= 3; ++kind) {
    cases.push_back(SweepCase{4, 3, 8, 2, kind, 0});
    cases.push_back(SweepCase{4, 3, 8, 2, kind, 3});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Deals, CbcPropertySweep,
                         ::testing::ValuesIn(CbcCases()), CaseName);

}  // namespace
}  // namespace xdeal
