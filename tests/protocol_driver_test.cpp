// ProtocolDriver: the unified deal-execution API. One DealTimings schedule
// drives either protocol; drivers reproduce the direct TimelockRun/CbcRun
// behaviour; the PartyFactory hook injects adversaries and watchtowers
// uniformly; and unsafe CBC configs (abort_patience < Δ) are rejected at
// deploy time instead of silently running.

#include <gtest/gtest.h>

#include <memory>

#include "cbc/cbc_service.h"
#include "core/adversaries.h"
#include "core/cbc_run.h"
#include "core/checker.h"
#include "core/protocol_driver.h"
#include "core/timelock_run.h"
#include "core/watchtower.h"
#include "tests/scenario_util.h"

namespace xdeal {
namespace {

TEST(DealTimingsTest, PerProtocolDefaultsMatchTheHistoricalConfigs) {
  DealTimings tl = DealTimings::DefaultsFor(Protocol::kTimelock);
  EXPECT_EQ(tl.escrow_time, 50u);
  EXPECT_EQ(tl.transfer_start, 150u);
  EXPECT_EQ(tl.step_gap, 40u);
  EXPECT_EQ(tl.validation_slack, 50u);
  EXPECT_EQ(tl.delta, 200u);

  DealTimings cbc = DealTimings::DefaultsFor(Protocol::kCbc);
  EXPECT_EQ(cbc.start_deal_time, 20u);
  EXPECT_EQ(cbc.escrow_time, 80u);
  EXPECT_EQ(cbc.transfer_start, 180u);

  // The config structs inherit the same numbers — one source of truth.
  TimelockConfig tl_config;
  EXPECT_EQ(tl_config.escrow_time, tl.escrow_time);
  EXPECT_EQ(tl_config.transfer_start, tl.transfer_start);
  CbcConfig cbc_config;
  EXPECT_EQ(cbc_config.escrow_time, cbc.escrow_time);
  EXPECT_EQ(cbc_config.transfer_start, cbc.transfer_start);
}

TEST(DealTimingsTest, ShiftByMovesAbsoluteTimesOnly) {
  DealTimings t = DealTimings::DefaultsFor(Protocol::kCbc);
  DealTimings shifted = t;
  shifted.ShiftBy(1000);
  EXPECT_EQ(shifted.setup_time, t.setup_time + 1000);
  EXPECT_EQ(shifted.start_deal_time, t.start_deal_time + 1000);
  EXPECT_EQ(shifted.escrow_time, t.escrow_time + 1000);
  EXPECT_EQ(shifted.transfer_start, t.transfer_start + 1000);
  // Durations are not offsets.
  EXPECT_EQ(shifted.step_gap, t.step_gap);
  EXPECT_EQ(shifted.validation_slack, t.validation_slack);
  EXPECT_EQ(shifted.delta, t.delta);
}

TEST(DealTimingsTest, ValidationTimeCoversTheTransferWindow) {
  DealTimings t;
  t.transfer_start = 100;
  t.step_gap = 40;
  t.validation_slack = 50;
  t.parallel_transfers = false;
  EXPECT_EQ(t.ValidationTime(6), 100u + 6 * 40 + 50);
  t.parallel_transfers = true;
  EXPECT_EQ(t.ValidationTime(6), 100u + 1 * 40 + 50);
}

TEST(ProtocolTest, ToStringNamesEveryProtocol) {
  EXPECT_STREQ(ToString(Protocol::kTimelock), "timelock");
  EXPECT_STREQ(ToString(Protocol::kCbc), "cbc");
  EXPECT_STREQ(ToString(Protocol::kHtlc), "htlc");
}

TEST(ProtocolDriverTest, TimelockDriverMatchesDirectRun) {
  // The same broker deal through the driver and through TimelockRun
  // directly (fresh worlds, same seed) produces identical outcomes and gas.
  BrokerScenario direct_scenario = MakeBrokerScenario(5);
  TimelockConfig config;
  config.delta = 120;
  TimelockRun run(&direct_scenario.env->world(), direct_scenario.spec,
                  config);
  ASSERT_TRUE(run.Start().ok());
  direct_scenario.env->world().scheduler().Run();
  TimelockResult direct = run.Collect();

  BrokerScenario driver_scenario = MakeBrokerScenario(5);
  DealTimings timings = DealTimings::DefaultsFor(Protocol::kTimelock);
  timings.delta = 120;
  TimelockDriver driver;
  std::unique_ptr<DealRuntime> runtime = driver.CreateDeal(
      &driver_scenario.env->world(), driver_scenario.spec, timings);
  ASSERT_TRUE(runtime->Deploy().ok());
  driver_scenario.env->world().scheduler().Run();
  DealResult result = runtime->Collect();

  EXPECT_EQ(result.protocol, Protocol::kTimelock);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.released_contracts, direct.released_contracts);
  EXPECT_EQ(result.refunded_contracts, direct.refunded_contracts);
  EXPECT_EQ(result.all_settled, direct.all_settled);
  EXPECT_EQ(result.settle_time, direct.settle_time);
  EXPECT_EQ(result.commit_phase_end, direct.commit_phase_end);
  EXPECT_EQ(result.gas_escrow, direct.gas_escrow);
  EXPECT_EQ(result.gas_transfer, direct.gas_transfer);
  EXPECT_EQ(result.gas_vote, direct.gas_commit);
  EXPECT_EQ(result.sig_verifies, direct.sig_verifies_commit);
  EXPECT_EQ(result.outcome, kDealCommitted);
}

TEST(ProtocolDriverTest, CbcDriverCommitsTheBrokerDeal) {
  BrokerScenario s = MakeBrokerScenario(6);
  CbcService service(&s.env->world(), CbcService::Options{});
  CbcDriver driver(&service);
  std::unique_ptr<DealRuntime> runtime = driver.CreateDeal(
      &s.env->world(), s.spec, DealTimings::DefaultsFor(Protocol::kCbc));
  ASSERT_TRUE(runtime->Deploy().ok());
  DealChecker checker(&s.env->world(), s.spec, runtime->escrow_contracts());
  checker.CaptureInitial();
  s.env->world().scheduler().Run();

  DealResult result = runtime->Collect();
  EXPECT_EQ(result.protocol, Protocol::kCbc);
  EXPECT_EQ(result.outcome, kDealCommitted);
  EXPECT_TRUE(result.committed);
  EXPECT_TRUE(result.all_settled);
  EXPECT_TRUE(result.atomic);
  EXPECT_GT(result.gas_vote, 0u);
  EXPECT_GT(result.gas_decide, 0u);
  EXPECT_GT(result.sig_verifies, 0u);
  EXPECT_TRUE(checker.StrongLivenessHolds());
  EXPECT_EQ(runtime->outcome(), kDealCommitted);
}

/// One factory type that deviates under either protocol — the uniformity
/// the PartyFactory hook buys.
class DeviantFactory : public PartyFactory {
 public:
  explicit DeviantFactory(uint32_t deviant) : deviant_(deviant) {}

  std::unique_ptr<TimelockParty> MakeTimelockParty(PartyId p) override {
    if (p.v == deviant_) return std::make_unique<VoteWithholdingParty>();
    return nullptr;
  }
  std::unique_ptr<CbcParty> MakeCbcParty(PartyId p) override {
    if (p.v == deviant_) return std::make_unique<CbcAlwaysAbortParty>();
    return nullptr;
  }

 private:
  uint32_t deviant_;
};

TEST(ProtocolDriverTest, OnePartyFactoryServesBothProtocols) {
  // Timelock: the withheld vote forces a full refund.
  {
    BrokerScenario s = MakeBrokerScenario(8);
    DeviantFactory factory(s.bob.v);
    TimelockDriver driver;
    DealTimings timings = DealTimings::DefaultsFor(Protocol::kTimelock);
    timings.delta = 80;
    std::unique_ptr<DealRuntime> runtime =
        driver.CreateDeal(&s.env->world(), s.spec, timings, &factory);
    ASSERT_TRUE(runtime->Deploy().ok());
    s.env->world().scheduler().Run();
    DealResult result = runtime->Collect();
    EXPECT_TRUE(result.aborted);
    EXPECT_EQ(result.released_contracts, 0u);
  }
  // CBC: the same factory's abort vote aborts the deal atomically.
  {
    BrokerScenario s = MakeBrokerScenario(8);
    CbcService service(&s.env->world(), CbcService::Options{});
    CbcDriver driver(&service);
    DeviantFactory factory(s.bob.v);
    std::unique_ptr<DealRuntime> runtime =
        driver.CreateDeal(&s.env->world(), s.spec,
                          DealTimings::DefaultsFor(Protocol::kCbc), &factory);
    ASSERT_TRUE(runtime->Deploy().ok());
    s.env->world().scheduler().Run();
    DealResult result = runtime->Collect();
    EXPECT_EQ(result.outcome, kDealAborted);
    EXPECT_TRUE(result.atomic);
  }
}

class TowerFactory : public PartyFactory {
 public:
  std::unique_ptr<Watchtower> tower;
  Protocol seen = Protocol::kHtlc;
  size_t escrows_seen = 0;

  void OnDeployed(DealRuntime& runtime) override {
    seen = runtime.protocol();
    escrows_seen = runtime.escrow_contracts().size();
    TimelockRun* run = runtime.timelock_run();
    ASSERT_NE(run, nullptr);
    PartyId op = runtime.world().RegisterParty("hook-tower");
    tower = std::make_unique<Watchtower>(&runtime.world(), runtime.spec(),
                                         run->deployment(), op,
                                         runtime.spec().parties);
    tower->Arm();
  }
};

TEST(ProtocolDriverTest, OnDeployedHookArmsAWatchtower) {
  BrokerScenario s = MakeBrokerScenario(9);
  TowerFactory factory;
  TimelockDriver driver;
  DealTimings timings = DealTimings::DefaultsFor(Protocol::kTimelock);
  timings.delta = 80;
  std::unique_ptr<DealRuntime> runtime =
      driver.CreateDeal(&s.env->world(), s.spec, timings, &factory);
  ASSERT_TRUE(runtime->Deploy().ok());
  EXPECT_EQ(factory.seen, Protocol::kTimelock);
  EXPECT_EQ(factory.escrows_seen, s.spec.NumAssets());
  ASSERT_NE(factory.tower, nullptr);

  s.env->world().scheduler().Run();
  // Clean run: the tower is harmless and the deal commits.
  EXPECT_TRUE(runtime->Collect().committed);
}

TEST(ProtocolDriverTest, CbcAbortPatienceBelowDeltaIsRejected) {
  // Default patience is 400; a Δ above it violates the §6 "wait at least Δ
  // before rescinding" precondition and must be rejected before anything is
  // scheduled.
  BrokerScenario s = MakeBrokerScenario(10);
  CbcService service(&s.env->world(), CbcService::Options{});
  CbcDriver driver(&service);
  DealTimings timings = DealTimings::DefaultsFor(Protocol::kCbc);
  timings.delta = 500;
  std::unique_ptr<DealRuntime> runtime =
      driver.CreateDeal(&s.env->world(), s.spec, timings);
  Status status = runtime->Deploy();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  // Raising the patience to Δ makes the same schedule acceptable.
  CbcDriver::Options options;
  options.abort_patience = 500;
  CbcDriver patient_driver(&service, options);
  std::unique_ptr<DealRuntime> patient_runtime =
      patient_driver.CreateDeal(&s.env->world(), s.spec, timings);
  EXPECT_TRUE(patient_runtime->Deploy().ok());
}

TEST(ProtocolDriverTest, DirectCbcRunRejectsUnsafePatienceToo) {
  // The validation lives in the engine, so direct CbcRun users get it even
  // without the driver layer.
  BrokerScenario s = MakeBrokerScenario(11);
  CbcService service(&s.env->world(), CbcService::Options{});
  CbcConfig config;
  config.delta = 100;
  config.abort_patience = 99;
  CbcRun run(&s.env->world(), s.spec, config, &service);
  EXPECT_FALSE(run.Start().ok());
}

}  // namespace
}  // namespace xdeal
