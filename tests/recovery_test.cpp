// Crash/restart as a first-class injection: killed watchtowers and brokers
// lose their in-memory state and recover purely from on-chain evidence. A
// recovering tower still rescues the stranded deposit it guards; a tower
// that never restarts re-exposes the §5.3 stranded-deposit attack (the
// negative control). Recovering brokers rebuild their reservation books and
// keep their portfolios conformant. Every outcome replays bit-for-bit from
// its reported options.

#include <gtest/gtest.h>

#include <memory>

#include "core/traffic_engine.h"

namespace xdeal {
namespace {

TrafficOptions TowerWorkload() {
  TrafficOptions options;
  options.base_seed = 55;
  options.num_deals = 8;
  options.num_chains = 4;
  options.protocol_mix = {Protocol::kTimelock};
  options.offline_party_deals = {3};
  options.watchtower_every = 1;  // every timelock deal guarded
  return options;
}

TEST(RecoveryTest, CrashedTowerThatRecoversStillRescuesStrandedDeposit) {
  TrafficOptions options = TowerWorkload();
  options.tower_crash_every = 1;    // kill every tower...
  options.tower_crash_after = 5;    // ...right after arming
  options.tower_recover_after = 900;  // restart well past the refund time

  // The tower guarding deal 3 is down across the refund deadline, so the
  // scheduled watch fires into a dead process. Recovery re-derives
  // everything from public contract state: accepted votes are re-scanned,
  // and the missed refund watch runs immediately — the dark party's
  // deposit comes home late, but it comes home.
  TrafficReport report = RunTraffic(options);
  const TrafficDealRecord& rescued = report.deals[3];
  EXPECT_TRUE(rescued.tainted);
  EXPECT_TRUE(rescued.aborted) << report.Summary();
  EXPECT_TRUE(rescued.all_settled) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  EXPECT_EQ(report.untagged_gas, 0u);
  for (const TrafficDealRecord& rec : report.deals) {
    if (!rec.tainted) EXPECT_TRUE(rec.committed) << "deal " << rec.index;
  }

  // The reported options are a complete reproducer.
  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
  EXPECT_EQ(replay.Summary(), report.Summary());
}

TEST(RecoveryTest, TowerThatNeverRecoversReExposesStrandedDeposit) {
  TrafficOptions options = TowerWorkload();
  options.tower_crash_every = 1;
  options.tower_crash_after = 5;
  options.tower_recover_after = 0;  // negative control: stays dead

  // Its clients relied on the tower to neutralize the stranded-deposit
  // attack; with the tower dead and the depositor dark, nobody claims the
  // refund and deal 3 never fully settles. Locked value, not a property
  // violation — the deal's own party deviated.
  TrafficReport report = RunTraffic(options);
  const TrafficDealRecord& stranded = report.deals[3];
  EXPECT_TRUE(stranded.tainted);
  EXPECT_FALSE(stranded.committed) << report.Summary();
  EXPECT_FALSE(stranded.all_settled) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  for (const TrafficDealRecord& rec : report.deals) {
    if (!rec.tainted) EXPECT_TRUE(rec.committed) << "deal " << rec.index;
  }

  // The stranded outcome replays bit-for-bit from the same seed.
  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
  EXPECT_FALSE(replay.deals[3].all_settled);
}

TEST(RecoveryTest, TowerCrashesAreHarmlessToCompliantDeals) {
  // No offline parties: every deal's own parties drive it to commit, so
  // killing towers (pure acceleration) must not change any outcome.
  TrafficOptions options = TowerWorkload();
  options.offline_party_deals = {};
  options.tower_crash_every = 2;
  options.tower_crash_after = 10;
  options.tower_recover_after = 0;

  TrafficReport report = RunTraffic(options);
  EXPECT_EQ(report.committed, options.num_deals) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  for (const TrafficDealRecord& rec : report.deals) {
    EXPECT_TRUE(rec.all_settled) << "deal " << rec.index;
  }
}

TEST(RecoveryTest, CrashedBrokerRecoversHerBookFromOnChainEvidence) {
  TrafficOptions options;
  options.base_seed = 91;
  options.num_deals = 24;
  options.num_chains = 4;
  options.protocol_mix = {Protocol::kTimelock};
  options.brokers.num_brokers = 2;
  options.brokers.broker_every = 2;
  options.broker_crash_times = {120, 400};  // both brokers die mid-run
  options.broker_recover_after = 80;

  // A killed broker loses her reservation book (in-memory float/inventory
  // accounting) but none of her on-chain balances or escrows. Recovery
  // re-scans her escrow evidence; with the book rebuilt, her portfolio
  // stays conformant and every deal she hosts still settles atomically.
  TrafficReport report = RunTraffic(options);
  EXPECT_GT(report.broker_deals, 0u);
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  ASSERT_EQ(report.brokers.size(), 2u);
  for (const BrokerRecord& broker : report.brokers) {
    EXPECT_TRUE(broker.portfolio_ok) << report.Summary();
    EXPECT_GT(broker.deals, 0u);
  }
  for (const TrafficDealRecord& rec : report.deals) {
    EXPECT_TRUE(rec.committed) << "deal " << rec.index;
  }

  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
}

TEST(RecoveryTest, ServiceModeCrashScheduleKeepsCompliantActorsClean) {
  // The same injections as first-class service workload: durable crash and
  // recovery events fire across epochs, and compliant actors stay
  // violation-free for the whole service lifetime.
  TrafficOptions options;
  options.base_seed = 92;
  options.num_chains = 4;
  options.deals_per_epoch = 10;
  options.indexed_observation = true;
  options.watchtower_every = 3;
  options.brokers.num_brokers = 2;
  options.brokers.broker_every = 4;
  options.tower_crash_every = 2;
  options.tower_crash_after = 15;
  options.tower_recover_after = 300;
  options.broker_crash_times = {150, 900};
  options.broker_recover_after = 100;

  Result<std::unique_ptr<TrafficService>> service =
      TrafficService::Create(options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  for (size_t e = 0; e < 3; ++e) {
    EpochReport epoch = service.value()->RunEpoch();
    EXPECT_EQ(epoch.violations, 0u);
  }
  ServiceReport report = service.value()->Finish();
  EXPECT_EQ(report.deals, 30u);
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  EXPECT_EQ(report.broker_portfolio_violations, 0u) << report.Summary();
  EXPECT_GT(report.committed, 0u);

  // And the whole crash-laden service run replays bit-for-bit.
  ServiceReport replay = [&options] {
    Result<std::unique_ptr<TrafficService>> again =
        TrafficService::Create(options);
    EXPECT_TRUE(again.ok());
    for (size_t e = 0; e < 3; ++e) again.value()->RunEpoch();
    return again.value()->Finish();
  }();
  EXPECT_EQ(replay.final_fingerprint, report.final_fingerprint);
  EXPECT_EQ(replay.Summary(), report.Summary());
}

}  // namespace
}  // namespace xdeal
