// ScenarioSweep engine: the scenario matrix is stable and seed-derived, a
// sweep report is bit-identical across thread counts, honest runs are
// conformant, and a seeded §5.3-style violation is caught and reported with
// its reproducer seed.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/scenario_sweep.h"

namespace xdeal {
namespace {

SweepAxes SmallAxes() {
  SweepAxes axes;
  axes.shapes = {{3, 2, 5, 2, 0}, {4, 3, 8, 2, 0}};
  axes.protocols = {Protocol::kTimelock, Protocol::kCbc,
                    Protocol::kHtlc};
  axes.adversaries = {SweepAdversary::kNone, SweepAdversary::kCrashAtCommit,
                      SweepAdversary::kVoteWithholding,
                      SweepAdversary::kCbcAlwaysAbort,
                      SweepAdversary::kCbcRescindRacer};
  axes.networks = {SweepNetwork::kSynchronous};
  axes.positions = {0, 1};
  axes.seeds_per_cell = 1;
  return axes;
}

TEST(ScenarioMatrixTest, StableIndicesAndDerivedSeeds) {
  SweepAxes axes = SmallAxes();
  std::vector<ScenarioSpec> a = BuildScenarioMatrix(axes, 42);
  std::vector<ScenarioSpec> b = BuildScenarioMatrix(axes, 42);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, i);
    EXPECT_EQ(a[i].seed, ScenarioSeed(42, i));
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].protocol, b[i].protocol);
    EXPECT_EQ(a[i].adversary, b[i].adversary);
    EXPECT_EQ(a[i].network, b[i].network);
    EXPECT_EQ(a[i].position, b[i].position);
  }
  // Different base seed -> different scenario seeds, same structure.
  std::vector<ScenarioSpec> c = BuildScenarioMatrix(axes, 43);
  ASSERT_EQ(a.size(), c.size());
  EXPECT_NE(a[0].seed, c[0].seed);
}

TEST(ScenarioMatrixTest, InapplicableCombinationsAreSkipped) {
  SweepAxes axes;
  axes.shapes = {{3, 2, 5, 2, 0}};
  axes.protocols = {Protocol::kTimelock};
  axes.adversaries = {SweepAdversary::kNone, SweepAdversary::kCbcAlwaysAbort};
  axes.networks = {SweepNetwork::kSynchronous, SweepNetwork::kPreGstAsync};
  std::vector<ScenarioSpec> specs = BuildScenarioMatrix(axes, 1);
  // CBC-only adversaries and pre-GST asynchrony never pair with timelock.
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].adversary, SweepAdversary::kNone);
  EXPECT_EQ(specs[0].network, SweepNetwork::kSynchronous);
}

TEST(ScenarioSweepTest, ReportBitIdenticalAcrossThreadCounts) {
  SweepAxes axes = SmallAxes();
  SweepOptions one;
  one.base_seed = 7;
  one.num_threads = 1;
  SweepReport baseline = RunSweep(axes, one);

  for (size_t threads : {2u, 4u}) {
    SweepOptions opts;
    opts.base_seed = 7;
    opts.num_threads = threads;
    SweepReport report = RunSweep(axes, opts);
    EXPECT_EQ(report.fingerprint, baseline.fingerprint)
        << "threads=" << threads;
    EXPECT_EQ(report.Summary(), baseline.Summary()) << "threads=" << threads;
    EXPECT_EQ(report.num_scenarios, baseline.num_scenarios);
    EXPECT_EQ(report.violations.size(), baseline.violations.size());
  }
}

TEST(ScenarioSweepTest, HonestRunsAreConformant) {
  SweepAxes axes;
  axes.shapes = {{2, 1, 2, 1, 0}, {3, 2, 5, 2, 0}, {4, 3, 8, 3, 3}};
  axes.protocols = {Protocol::kTimelock, Protocol::kCbc,
                    Protocol::kHtlc};
  axes.adversaries = {SweepAdversary::kNone};
  axes.networks = {SweepNetwork::kSynchronous, SweepNetwork::kPostGstSync};
  axes.seeds_per_cell = 2;
  SweepOptions opts;
  opts.base_seed = 11;
  opts.num_threads = 2;
  SweepReport report = RunSweep(axes, opts);

  EXPECT_GT(report.num_scenarios, 0u);
  EXPECT_EQ(report.honest_runs, report.num_scenarios);
  EXPECT_EQ(report.committed, report.num_scenarios) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
}

TEST(ScenarioSweepTest, AdversariesNeverHurtCompliantParties) {
  SweepAxes axes;
  axes.shapes = {{4, 3, 8, 2, 0}};
  axes.protocols = {Protocol::kTimelock, Protocol::kCbc};
  axes.adversaries = {
      SweepAdversary::kCrashAtEscrow, SweepAdversary::kCrashAtCommit,
      SweepAdversary::kVoteWithholding, SweepAdversary::kDoubleSpend,
      SweepAdversary::kShortTransfer, SweepAdversary::kCbcCrashBeforeVote,
      SweepAdversary::kCbcAlwaysAbort, SweepAdversary::kCbcFakeProof};
  axes.networks = {SweepNetwork::kSynchronous};
  axes.positions = {0, 2};
  axes.seeds_per_cell = 2;
  SweepOptions opts;
  opts.base_seed = 5;
  opts.num_threads = 2;
  SweepReport report = RunSweep(axes, opts);

  EXPECT_GT(report.num_scenarios, 0u);
  EXPECT_EQ(report.adversarial_runs, report.num_scenarios);
  // Whatever the deviators do, Properties 1 and 2 hold for everyone else.
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
}

TEST(ScenarioSweepTest, CbcPreGstAsynchronyStaysAtomicAndSafe) {
  // Pre-GST the network is asynchronous past every protocol deadline: CBC
  // deals may abort, but atomically, and Properties 1–2 must still hold —
  // with or without a deviating party.
  SweepAxes axes;
  axes.shapes = {{3, 2, 5, 2, 0}, {4, 3, 8, 2, 0}};
  axes.protocols = {Protocol::kCbc};
  axes.adversaries = {SweepAdversary::kNone, SweepAdversary::kCbcAlwaysAbort,
                      SweepAdversary::kCbcRescindRacer};
  axes.networks = {SweepNetwork::kPreGstAsync};
  axes.positions = {0, 1};
  axes.seeds_per_cell = 2;
  SweepOptions opts;
  opts.base_seed = 23;
  opts.num_threads = 2;
  SweepReport report = RunSweep(axes, opts);

  EXPECT_GT(report.num_scenarios, 0u);
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
}

TEST(ScenarioSweepTest, SeededDosViolationCaughtWithReproducerSeed) {
  // The §5.3 free-rider window: every party except the beneficiary is cut
  // off right after votes are cast, Δ is small, and the deal settles mixed —
  // the beneficiary keeps its own assets AND collects the others'. No party
  // deviated, so the checker counts everyone compliant and must flag
  // Property 1.
  SweepAxes axes;
  axes.shapes = {{3, 2, 6, 2, 0}};
  axes.protocols = {Protocol::kTimelock};
  axes.adversaries = {SweepAdversary::kNone};
  axes.networks = {SweepNetwork::kDosWindow};
  axes.positions = {0, 1, 2};
  axes.seeds_per_cell = 4;
  SweepOptions opts;
  opts.base_seed = 97;
  opts.num_threads = 2;
  SweepReport report = RunSweep(axes, opts);

  ASSERT_FALSE(report.violations.empty()) << report.Summary();

  // Every reported violation carries its reproducer: the scenario index and
  // the derived seed. Re-running that exact matrix entry reproduces the
  // violation bit-for-bit.
  std::vector<ScenarioSpec> specs = BuildScenarioMatrix(axes, opts.base_seed);
  for (const SweepViolation& v : report.violations) {
    ASSERT_LT(v.scenario_index, specs.size());
    const ScenarioSpec& spec = specs[v.scenario_index];
    EXPECT_EQ(v.seed, spec.seed);
    EXPECT_EQ(v.seed, ScenarioSeed(opts.base_seed, v.scenario_index));
    ScenarioOutcome replay = RunScenario(spec);
    EXPECT_EQ(replay.violation, v.what);
  }
  // The caught violation is the paper's Property 1 (safety) failure.
  bool saw_safety = false;
  for (const SweepViolation& v : report.violations) {
    if (v.what.find("property1-safety") != std::string::npos) {
      saw_safety = true;
    }
  }
  EXPECT_TRUE(saw_safety) << report.Summary();
}

TEST(ScenarioSweepTest, DefaultAxesMeetTheAcceptanceFloor) {
  SweepAxes axes = DefaultSweepAxes();
  std::vector<ScenarioSpec> specs = BuildScenarioMatrix(axes, 1);
  EXPECT_GE(specs.size(), 500u);

  // >= 4 distinct adversaries actually scheduled, across >= 2 protocols.
  std::set<SweepAdversary> adversaries;
  std::set<Protocol> protocols;
  for (const ScenarioSpec& sc : specs) {
    if (sc.adversary != SweepAdversary::kNone) adversaries.insert(sc.adversary);
    protocols.insert(sc.protocol);
  }
  EXPECT_GE(adversaries.size(), 4u);
  EXPECT_GE(protocols.size(), 2u);
}

}  // namespace
}  // namespace xdeal
