// Shared scenario builders for integration tests: the paper's Figure 1
// broker deal (Alice brokers Bob's tickets to Carol) and small helpers.

#ifndef XDEAL_TESTS_SCENARIO_UTIL_H_
#define XDEAL_TESTS_SCENARIO_UTIL_H_

#include <memory>
#include <string>

#include "core/deal_spec.h"
#include "core/env.h"

namespace xdeal {

struct BrokerScenario {
  std::unique_ptr<DealEnv> env;
  DealSpec spec;
  PartyId alice, bob, carol;
  uint32_t tickets_asset = 0;
  uint32_t coins_asset = 0;
  uint64_t ticket1 = 0, ticket2 = 0;
};

/// Builds Figure 1: Bob sells two tickets for 100 coins via Alice, who
/// keeps a 1-coin commission out of Carol's 101 coins.
inline BrokerScenario MakeBrokerScenario(uint64_t seed,
                                         std::unique_ptr<NetworkModel> net =
                                             nullptr) {
  BrokerScenario s;
  EnvConfig config;
  config.seed = seed;
  config.network = std::move(net);
  s.env = std::make_unique<DealEnv>(std::move(config));

  s.alice = s.env->AddParty("alice");
  s.bob = s.env->AddParty("bob");
  s.carol = s.env->AddParty("carol");

  ChainId ticket_chain = s.env->AddChain("ticket-chain");
  ChainId coin_chain = s.env->AddChain("coin-chain");

  s.spec.deal_id = MakeDealId("broker", seed);
  s.spec.parties = {s.alice, s.bob, s.carol};
  s.tickets_asset =
      s.env->AddNftAsset(&s.spec, ticket_chain, "tickets", s.bob);
  s.coins_asset =
      s.env->AddFungibleAsset(&s.spec, coin_chain, "coins", s.carol);

  s.ticket1 = s.env->MintTicket(s.spec, s.tickets_asset, s.bob, "hit-play",
                                "orch-A1", 95);
  s.ticket2 = s.env->MintTicket(s.spec, s.tickets_asset, s.bob, "hit-play",
                                "orch-A2", 95);
  s.env->Mint(s.spec, s.coins_asset, s.carol, 101);

  // Escrow phase: Bob escrows tickets, Carol escrows coins.
  s.spec.escrows = {
      {s.tickets_asset, s.bob, s.ticket1},
      {s.tickets_asset, s.bob, s.ticket2},
      {s.coins_asset, s.carol, 101},
  };
  // Transfer phase: tickets Bob -> Alice -> Carol; coins Carol -> Alice,
  // then Alice keeps 1 and sends 100 to Bob.
  s.spec.transfers = {
      {s.tickets_asset, s.bob, s.alice, s.ticket1},
      {s.tickets_asset, s.bob, s.alice, s.ticket2},
      {s.coins_asset, s.carol, s.alice, 101},
      {s.tickets_asset, s.alice, s.carol, s.ticket1},
      {s.tickets_asset, s.alice, s.carol, s.ticket2},
      {s.coins_asset, s.alice, s.bob, 100},
  };
  return s;
}

}  // namespace xdeal

#endif  // XDEAL_TESTS_SCENARIO_UTIL_H_
