// Discrete-event scheduler and network model unit tests.

#include <gtest/gtest.h>

#include <vector>

#include "sim/network.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace xdeal {
namespace {

TEST(SchedulerTest, RunsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(30, [&] { order.push_back(3); });
  sched.ScheduleAt(10, [&] { order.push_back(1); });
  sched.ScheduleAt(20, [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30u);
}

TEST(SchedulerTest, FifoAtEqualTimes) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sched.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, CallbacksCanScheduleMore) {
  Scheduler sched;
  std::vector<Tick> fire_times;
  std::function<void()> chain = [&] {
    fire_times.push_back(sched.now());
    if (fire_times.size() < 5) sched.ScheduleAfter(10, chain);
  };
  sched.ScheduleAt(0, chain);
  sched.Run();
  EXPECT_EQ(fire_times, (std::vector<Tick>{0, 10, 20, 30, 40}));
}

TEST(SchedulerTest, PastEventsClampToNow) {
  Scheduler sched;
  Tick fired_at = 0;
  sched.ScheduleAt(100, [&] {
    sched.ScheduleAt(50, [&] { fired_at = sched.now(); });  // in the past
  });
  sched.Run();
  EXPECT_EQ(fired_at, 100u);
}

TEST(SchedulerTest, RunWithLimitStops) {
  Scheduler sched;
  int count = 0;
  for (Tick t = 0; t < 100; t += 10) {
    sched.ScheduleAt(t, [&] { ++count; });
  }
  sched.Run(45);
  EXPECT_EQ(count, 5);  // 0,10,20,30,40
  EXPECT_EQ(sched.pending(), 5u);
  sched.Run();
  EXPECT_EQ(count, 10);
}

TEST(SchedulerTest, StepReturnsFalseWhenEmpty) {
  Scheduler sched;
  EXPECT_FALSE(sched.Step());
  sched.ScheduleAt(1, [] {});
  EXPECT_TRUE(sched.Step());
  EXPECT_FALSE(sched.Step());
}

TEST(SchedulerTest, StatsTrackHighWaterMarkAndWhenItWasSet) {
  Scheduler sched;
  // Three events pre-run: high-water 3, set while now() was still 0.
  for (Tick t = 10; t <= 30; t += 10) {
    sched.ScheduleAt(t, [] {});
  }
  EXPECT_EQ(sched.stats().max_pending, 3u);
  EXPECT_EQ(sched.stats().max_pending_at, 0u);

  // An event at t=40 that fans out five more. By the time it runs the queue
  // has drained, so the five adds push the high-water to 5 — stamped at 40.
  sched.ScheduleAt(40, [&sched] {
    for (int i = 0; i < 5; ++i) sched.ScheduleAfter(1, [] {});
  });
  sched.Run();
  EXPECT_EQ(sched.stats().max_pending, 5u);
  EXPECT_EQ(sched.stats().max_pending_at, 40u);
  EXPECT_EQ(sched.stats().executed, 9u);
}

TEST(SchedulerTest, SaturatingScheduleAfter) {
  Scheduler sched;
  bool fired = false;
  sched.ScheduleAfter(kTickMax, [&] { fired = true; });
  sched.ScheduleAt(5, [] {});
  sched.Run(1000);
  EXPECT_FALSE(fired);  // "never" event does not fire within the limit
}

// A policy that records the enabled-set size at every choose point and
// always takes the default choice.
class RecordingPolicy : public ChoicePolicy {
 public:
  size_t Choose(const std::vector<EnabledEvent>& enabled) override {
    sizes.push_back(enabled.size());
    return 0;
  }
  std::vector<size_t> sizes;
};

TEST(ChoicePolicyTest, DefaultPolicyMatchesNoPolicyBitForBit) {
  std::vector<int> no_policy, with_default;
  {
    Scheduler sched;
    for (int i = 0; i < 4; ++i) {
      sched.ScheduleAt(5, EventLabel::Timer(i),
                       [&no_policy, i] { no_policy.push_back(i); });
    }
    sched.Run();
  }
  {
    Scheduler sched;
    DefaultChoicePolicy policy;
    sched.SetChoicePolicy(&policy);
    for (int i = 0; i < 4; ++i) {
      sched.ScheduleAt(5, EventLabel::Timer(i),
                       [&with_default, i] { with_default.push_back(i); });
    }
    sched.Run();
  }
  EXPECT_EQ(no_policy, with_default);
}

TEST(ChoicePolicyTest, ScriptedPolicyReordersAndClampsOutOfRange) {
  Scheduler sched;
  // Indices: 2 picks the last of three ties, 7 is out of range (clamps to
  // the default 0), then the exhausted script also defaults to 0.
  ScriptedChoicePolicy policy({2, 7});
  sched.SetChoicePolicy(&policy);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sched.ScheduleAt(5, EventLabel::Timer(i),
                     [&order, i] { order.push_back(i); });
  }
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{2, 0, 1}));
  EXPECT_EQ(policy.calls(), 3u);
}

TEST(ChoicePolicyTest, SameChannelTiesCollapseToOneChoice) {
  // Three same-tick events on one channel (same kind/chain/actor) are a
  // FIFO queue, not a choice; two more on distinct channels are choices.
  // The policy must see 3 enabled events (one per channel), and the
  // same-channel events must retain their submission order.
  Scheduler sched;
  RecordingPolicy policy;
  sched.SetChoicePolicy(&policy);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sched.ScheduleAt(5, EventLabel::TxArrival(/*chain=*/0, /*sender=*/1),
                     [&order, i] { order.push_back(i); });
  }
  sched.ScheduleAt(5, EventLabel::TxArrival(/*chain=*/1, /*sender=*/1),
                   [&order] { order.push_back(10); });
  sched.ScheduleAt(5, EventLabel::Timer(/*actor=*/2),
                   [&order] { order.push_back(20); });
  sched.Run();
  ASSERT_FALSE(policy.sizes.empty());
  EXPECT_EQ(policy.sizes.front(), 3u);
  std::vector<int> channel0;
  for (int v : order) {
    if (v < 3) channel0.push_back(v);
  }
  EXPECT_EQ(channel0, (std::vector<int>{0, 1, 2}));
}

TEST(ChoicePolicyTest, ShouldDropConsumesEventWithoutRunningIt) {
  // Drop every observation: the callback never runs, the event is gone
  // (not retried), and stats().dropped counts it.
  class DropObservations : public ChoicePolicy {
   public:
    size_t Choose(const std::vector<EnabledEvent>&) override { return 0; }
    bool ShouldDrop(const EnabledEvent& chosen) override {
      return chosen.label.kind == EventKind::kObservation;
    }
  };
  Scheduler sched;
  DropObservations policy;
  sched.SetChoicePolicy(&policy);
  bool observed = false, timed = false;
  sched.ScheduleAt(5, EventLabel::Observation(/*chain=*/0, /*observer=*/1),
                   [&observed] { observed = true; });
  sched.ScheduleAt(5, EventLabel::Timer(/*actor=*/1),
                   [&timed] { timed = true; });
  sched.Run();
  EXPECT_FALSE(observed);
  EXPECT_TRUE(timed);
  EXPECT_EQ(sched.stats().dropped, 1u);
  EXPECT_EQ(sched.stats().executed, 1u);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(SynchronousNetworkTest, DelaysWithinBounds) {
  SynchronousNetwork net(2, 9);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    Tick d = net.SampleDelay(0, Endpoint{0}, Endpoint{1}, &rng);
    EXPECT_GE(d, 2u);
    EXPECT_LE(d, 9u);
  }
}

TEST(SynchronousNetworkTest, DegenerateRange) {
  SynchronousNetwork net(5, 5);
  Rng rng(1);
  EXPECT_EQ(net.SampleDelay(0, Endpoint{0}, Endpoint{1}, &rng), 5u);
}

TEST(SemiSynchronousNetworkTest, PostGstBounded) {
  SemiSynchronousNetwork net(/*gst=*/1000, /*pre_gst_max=*/5000,
                             /*min=*/1, /*max=*/10);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    Tick d = net.SampleDelay(1000, Endpoint{0}, Endpoint{1}, &rng);
    EXPECT_LE(d, 10u);
  }
}

TEST(SemiSynchronousNetworkTest, PreGstDeliversByGstPlusBound) {
  SemiSynchronousNetwork net(/*gst=*/1000, /*pre_gst_max=*/100000,
                             /*min=*/1, /*max=*/10);
  Rng rng(3);
  for (Tick now : {0u, 400u, 990u}) {
    for (int i = 0; i < 200; ++i) {
      Tick d = net.SampleDelay(now, Endpoint{0}, Endpoint{1}, &rng);
      EXPECT_LE(now + d, 1010u) << "sent at " << now;
    }
  }
}

TEST(SemiSynchronousNetworkTest, PreGstCanExceedSyncBound) {
  SemiSynchronousNetwork net(/*gst=*/100000, /*pre_gst_max=*/50000,
                             /*min=*/1, /*max=*/10);
  Rng rng(4);
  bool saw_large = false;
  for (int i = 0; i < 200; ++i) {
    if (net.SampleDelay(0, Endpoint{0}, Endpoint{1}, &rng) > 10) {
      saw_large = true;
    }
  }
  EXPECT_TRUE(saw_large);
}

TEST(TargetedDosNetworkTest, TargetedMessagesHeldUntilAttackEnds) {
  auto base = std::make_unique<SynchronousNetwork>(1, 5);
  TargetedDosNetwork net(std::move(base), /*start=*/100, /*end=*/200);
  net.AddTarget(Endpoint{7});
  Rng rng(5);

  // Inside the window, targeted messages arrive only after the attack.
  Tick d = net.SampleDelay(150, Endpoint{7}, Endpoint{1}, &rng);
  EXPECT_GE(150 + d, 200u);
  d = net.SampleDelay(150, Endpoint{1}, Endpoint{7}, &rng);
  EXPECT_GE(150 + d, 200u);

  // Untargeted traffic is unaffected.
  d = net.SampleDelay(150, Endpoint{2}, Endpoint{3}, &rng);
  EXPECT_LE(d, 5u);

  // Outside the window, targeted endpoints behave normally.
  d = net.SampleDelay(300, Endpoint{7}, Endpoint{1}, &rng);
  EXPECT_LE(d, 5u);
}

}  // namespace
}  // namespace xdeal
