// Discrete-event scheduler and network model unit tests.

#include <gtest/gtest.h>

#include <vector>

#include "sim/network.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace xdeal {
namespace {

TEST(SchedulerTest, RunsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(30, [&] { order.push_back(3); });
  sched.ScheduleAt(10, [&] { order.push_back(1); });
  sched.ScheduleAt(20, [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30u);
}

TEST(SchedulerTest, FifoAtEqualTimes) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sched.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, CallbacksCanScheduleMore) {
  Scheduler sched;
  std::vector<Tick> fire_times;
  std::function<void()> chain = [&] {
    fire_times.push_back(sched.now());
    if (fire_times.size() < 5) sched.ScheduleAfter(10, chain);
  };
  sched.ScheduleAt(0, chain);
  sched.Run();
  EXPECT_EQ(fire_times, (std::vector<Tick>{0, 10, 20, 30, 40}));
}

TEST(SchedulerTest, PastEventsClampToNow) {
  Scheduler sched;
  Tick fired_at = 0;
  sched.ScheduleAt(100, [&] {
    sched.ScheduleAt(50, [&] { fired_at = sched.now(); });  // in the past
  });
  sched.Run();
  EXPECT_EQ(fired_at, 100u);
}

TEST(SchedulerTest, RunWithLimitStops) {
  Scheduler sched;
  int count = 0;
  for (Tick t = 0; t < 100; t += 10) {
    sched.ScheduleAt(t, [&] { ++count; });
  }
  sched.Run(45);
  EXPECT_EQ(count, 5);  // 0,10,20,30,40
  EXPECT_EQ(sched.pending(), 5u);
  sched.Run();
  EXPECT_EQ(count, 10);
}

TEST(SchedulerTest, StepReturnsFalseWhenEmpty) {
  Scheduler sched;
  EXPECT_FALSE(sched.Step());
  sched.ScheduleAt(1, [] {});
  EXPECT_TRUE(sched.Step());
  EXPECT_FALSE(sched.Step());
}

TEST(SchedulerTest, StatsTrackHighWaterMarkAndWhenItWasSet) {
  Scheduler sched;
  // Three events pre-run: high-water 3, set while now() was still 0.
  for (Tick t = 10; t <= 30; t += 10) {
    sched.ScheduleAt(t, [] {});
  }
  EXPECT_EQ(sched.stats().max_pending, 3u);
  EXPECT_EQ(sched.stats().max_pending_at, 0u);

  // An event at t=40 that fans out five more. By the time it runs the queue
  // has drained, so the five adds push the high-water to 5 — stamped at 40.
  sched.ScheduleAt(40, [&sched] {
    for (int i = 0; i < 5; ++i) sched.ScheduleAfter(1, [] {});
  });
  sched.Run();
  EXPECT_EQ(sched.stats().max_pending, 5u);
  EXPECT_EQ(sched.stats().max_pending_at, 40u);
  EXPECT_EQ(sched.stats().executed, 9u);
}

TEST(SchedulerTest, SaturatingScheduleAfter) {
  Scheduler sched;
  bool fired = false;
  sched.ScheduleAfter(kTickMax, [&] { fired = true; });
  sched.ScheduleAt(5, [] {});
  sched.Run(1000);
  EXPECT_FALSE(fired);  // "never" event does not fire within the limit
}

TEST(SynchronousNetworkTest, DelaysWithinBounds) {
  SynchronousNetwork net(2, 9);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    Tick d = net.SampleDelay(0, Endpoint{0}, Endpoint{1}, &rng);
    EXPECT_GE(d, 2u);
    EXPECT_LE(d, 9u);
  }
}

TEST(SynchronousNetworkTest, DegenerateRange) {
  SynchronousNetwork net(5, 5);
  Rng rng(1);
  EXPECT_EQ(net.SampleDelay(0, Endpoint{0}, Endpoint{1}, &rng), 5u);
}

TEST(SemiSynchronousNetworkTest, PostGstBounded) {
  SemiSynchronousNetwork net(/*gst=*/1000, /*pre_gst_max=*/5000,
                             /*min=*/1, /*max=*/10);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    Tick d = net.SampleDelay(1000, Endpoint{0}, Endpoint{1}, &rng);
    EXPECT_LE(d, 10u);
  }
}

TEST(SemiSynchronousNetworkTest, PreGstDeliversByGstPlusBound) {
  SemiSynchronousNetwork net(/*gst=*/1000, /*pre_gst_max=*/100000,
                             /*min=*/1, /*max=*/10);
  Rng rng(3);
  for (Tick now : {0u, 400u, 990u}) {
    for (int i = 0; i < 200; ++i) {
      Tick d = net.SampleDelay(now, Endpoint{0}, Endpoint{1}, &rng);
      EXPECT_LE(now + d, 1010u) << "sent at " << now;
    }
  }
}

TEST(SemiSynchronousNetworkTest, PreGstCanExceedSyncBound) {
  SemiSynchronousNetwork net(/*gst=*/100000, /*pre_gst_max=*/50000,
                             /*min=*/1, /*max=*/10);
  Rng rng(4);
  bool saw_large = false;
  for (int i = 0; i < 200; ++i) {
    if (net.SampleDelay(0, Endpoint{0}, Endpoint{1}, &rng) > 10) {
      saw_large = true;
    }
  }
  EXPECT_TRUE(saw_large);
}

TEST(TargetedDosNetworkTest, TargetedMessagesHeldUntilAttackEnds) {
  auto base = std::make_unique<SynchronousNetwork>(1, 5);
  TargetedDosNetwork net(std::move(base), /*start=*/100, /*end=*/200);
  net.AddTarget(Endpoint{7});
  Rng rng(5);

  // Inside the window, targeted messages arrive only after the attack.
  Tick d = net.SampleDelay(150, Endpoint{7}, Endpoint{1}, &rng);
  EXPECT_GE(150 + d, 200u);
  d = net.SampleDelay(150, Endpoint{1}, Endpoint{7}, &rng);
  EXPECT_GE(150 + d, 200u);

  // Untargeted traffic is unaffected.
  d = net.SampleDelay(150, Endpoint{2}, Endpoint{3}, &rng);
  EXPECT_LE(d, 5u);

  // Outside the window, targeted endpoints behave normally.
  d = net.SampleDelay(300, Endpoint{7}, Endpoint{1}, &rng);
  EXPECT_LE(d, 5u);
}

}  // namespace
}  // namespace xdeal
