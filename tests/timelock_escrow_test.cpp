// TimelockEscrowContract (Figure 5) at the contract level: path-signature
// vote validation, per-path deadlines, duplicate/forged vote rejection, and
// refund timing.

#include <gtest/gtest.h>

#include "chain/world.h"
#include "contracts/timelock_escrow.h"

namespace xdeal {
namespace {

struct TimelockEscrowFixture : public ::testing::Test {
  void SetUp() override {
    world = std::make_unique<World>(
        1, std::make_unique<SynchronousNetwork>(1, 5));
    alice = world->RegisterParty("alice");
    bob = world->RegisterParty("bob");
    carol = world->RegisterParty("carol");
    outsider = world->RegisterParty("mallory");
    chain = world->CreateChain("c", 10);
    token_id = chain->Deploy(std::make_unique<FungibleToken>("TOK", alice));
    escrow_id = chain->Deploy(
        std::make_unique<TimelockEscrowContract>(AssetKind::kFungible,
                                                 token_id));
    contract = chain->As<TimelockEscrowContract>(escrow_id);

    info.deal_id = MakeDealId("unit", 1);
    info.plist = {alice, bob, carol};
    info.t0 = 1000;
    info.delta = 100;

    // Fund and approve Alice, then escrow 50 at t=0.
    auto* token = chain->As<FungibleToken>(token_id);
    token->Mint(Holder::Party(alice), 50);
    CallContext setup = Ctx(alice, 0);
    token->Approve(setup, Holder::Party(alice), Holder::Party(alice),
                   Holder::OfContract(escrow_id), 50);
    EXPECT_TRUE(InvokeEscrow(alice, 0, 50).ok());
  }

  CallContext Ctx(PartyId sender, Tick now) {
    ctx_gas = std::make_unique<GasMeter>();
    CallContext ctx;
    ctx.world = world.get();
    ctx.chain = chain;
    ctx.sender = sender;
    ctx.now = now;
    ctx.gas = ctx_gas.get();
    return ctx;
  }

  Status InvokeEscrow(PartyId sender, Tick now, uint64_t value) {
    ByteWriter w;
    w.Raw(info.deal_id.bytes.data(), 32);
    w.U32(static_cast<uint32_t>(info.plist.size()));
    for (PartyId p : info.plist) w.U32(p.v);
    w.U64(info.t0);
    w.U64(info.delta);
    w.U64(value);
    CallContext ctx = Ctx(sender, now);
    ByteReader args(w.bytes());
    auto r = contract->Invoke(ctx, "escrow", args);
    return r.ok() ? Status::OK() : r.status();
  }

  /// Builds a correctly signed path vote for `voter` forwarded by `path`
  /// (path[0] must be voter).
  PathVote MakeVote(PartyId voter, const std::vector<PartyId>& path) {
    PathVote vote;
    vote.voter = voter;
    for (uint32_t i = 0; i < path.size(); ++i) {
      vote.path.emplace_back(
          path[i], world->KeyPairOf(path[i]).Sign(
                       TimelockVoteMessage(info.deal_id, voter, i)));
    }
    return vote;
  }

  Status InvokeCommit(PartyId sender, Tick now, const PathVote& vote) {
    ByteWriter w;
    w.Raw(info.deal_id.bytes.data(), 32);
    vote.AppendTo(&w);
    CallContext ctx = Ctx(sender, now);
    ByteReader args(w.bytes());
    auto r = contract->Invoke(ctx, "commit", args);
    return r.ok() ? Status::OK() : r.status();
  }

  Status InvokeRefund(PartyId sender, Tick now) {
    ByteWriter w;
    w.Raw(info.deal_id.bytes.data(), 32);
    CallContext ctx = Ctx(sender, now);
    ByteReader args(w.bytes());
    auto r = contract->Invoke(ctx, "claimRefund", args);
    return r.ok() ? Status::OK() : r.status();
  }

  std::unique_ptr<World> world;
  PartyId alice, bob, carol, outsider;
  Blockchain* chain = nullptr;
  ContractId token_id, escrow_id;
  TimelockEscrowContract* contract = nullptr;
  DealInfo info;
  std::unique_ptr<GasMeter> ctx_gas;
};

TEST_F(TimelockEscrowFixture, DirectVoteAccepted) {
  EXPECT_TRUE(InvokeCommit(alice, info.t0 + 50, MakeVote(alice, {alice})).ok());
  EXPECT_TRUE(contract->HasVoted(alice));
  EXPECT_EQ(contract->NumVotes(), 1u);
}

TEST_F(TimelockEscrowFixture, DirectVoteDeadlineIsOneDelta) {
  // |p| = 1 -> must arrive before t0 + Δ.
  EXPECT_EQ(InvokeCommit(alice, info.t0 + 100, MakeVote(alice, {alice})).code(),
            StatusCode::kTimedOut);
  EXPECT_TRUE(InvokeCommit(alice, info.t0 + 99, MakeVote(alice, {alice})).ok());
}

TEST_F(TimelockEscrowFixture, ForwardedVoteGetsExtraDelta) {
  // Bob's vote forwarded by Alice: |p| = 2 -> deadline t0 + 2Δ.
  PathVote forwarded = MakeVote(bob, {bob, alice});
  EXPECT_TRUE(InvokeCommit(alice, info.t0 + 150, forwarded).ok());
  // A third hop would be allowed even later.
  PathVote twice = MakeVote(carol, {carol, bob, alice});
  EXPECT_TRUE(InvokeCommit(alice, info.t0 + 250, twice).ok());
  EXPECT_FALSE(contract->released());  // Alice's own vote still missing
  // Alice's own vote at this late hour needs a length-3 path (t0 + 3Δ).
  EXPECT_TRUE(InvokeCommit(alice, info.t0 + 260,
                           MakeVote(alice, {alice, bob, carol})).ok());
  // All three votes in: the escrow released.
  EXPECT_TRUE(contract->released());
}

TEST_F(TimelockEscrowFixture, ForwardedVotePastItsDeadlineRejected) {
  PathVote forwarded = MakeVote(bob, {bob, alice});
  EXPECT_EQ(InvokeCommit(alice, info.t0 + 200, forwarded).code(),
            StatusCode::kTimedOut);
}

TEST_F(TimelockEscrowFixture, DuplicateVoteRejected) {
  ASSERT_TRUE(InvokeCommit(alice, info.t0 + 10, MakeVote(alice, {alice})).ok());
  EXPECT_EQ(InvokeCommit(alice, info.t0 + 20, MakeVote(alice, {alice})).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(TimelockEscrowFixture, NonPlistVoterRejected) {
  EXPECT_EQ(
      InvokeCommit(outsider, info.t0 + 10, MakeVote(outsider, {outsider}))
          .code(),
      StatusCode::kPermissionDenied);
}

TEST_F(TimelockEscrowFixture, NonPlistSignerRejected) {
  PathVote vote = MakeVote(alice, {alice, outsider});
  EXPECT_EQ(InvokeCommit(bob, info.t0 + 10, vote).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(TimelockEscrowFixture, DuplicateSignerRejected) {
  PathVote vote = MakeVote(alice, {alice});
  // Forge a path that lists Alice twice.
  vote.path.emplace_back(
      alice, world->KeyPairOf(alice).Sign(
                 TimelockVoteMessage(info.deal_id, alice, 1)));
  EXPECT_EQ(InvokeCommit(bob, info.t0 + 10, vote).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TimelockEscrowFixture, PathMustStartWithVoter) {
  // Bob claims to carry Alice's vote but signs first himself.
  PathVote vote;
  vote.voter = alice;
  vote.path.emplace_back(
      bob, world->KeyPairOf(bob).Sign(
               TimelockVoteMessage(info.deal_id, alice, 0)));
  EXPECT_EQ(InvokeCommit(bob, info.t0 + 10, vote).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TimelockEscrowFixture, ForgedSignatureRejected) {
  // Mallory forges Bob's vote by signing with her own key.
  PathVote vote;
  vote.voter = bob;
  vote.path.emplace_back(
      bob, world->KeyPairOf(outsider).Sign(
               TimelockVoteMessage(info.deal_id, bob, 0)));
  EXPECT_EQ(InvokeCommit(carol, info.t0 + 10, vote).code(),
            StatusCode::kUnverified);
}

TEST_F(TimelockEscrowFixture, WrongDepthSignatureRejected) {
  // Signature computed for depth 1 presented at depth 0.
  PathVote vote;
  vote.voter = bob;
  vote.path.emplace_back(
      bob, world->KeyPairOf(bob).Sign(
               TimelockVoteMessage(info.deal_id, bob, 1)));
  EXPECT_EQ(InvokeCommit(carol, info.t0 + 10, vote).code(),
            StatusCode::kUnverified);
}

TEST_F(TimelockEscrowFixture, SignatureGasChargedPerPathElement) {
  PathVote vote = MakeVote(carol, {carol, bob, alice});
  ASSERT_TRUE(InvokeCommit(alice, info.t0 + 250, vote).ok());
  // 3 signature verifications at 3000 gas each.
  EXPECT_EQ(ctx_gas->sig_verifies(), 3u);
  EXPECT_GE(ctx_gas->used(), 3u * kGasSigVerify);
}

TEST_F(TimelockEscrowFixture, ReleaseOnlyAfterAllVotes) {
  ASSERT_TRUE(InvokeCommit(alice, info.t0 + 10, MakeVote(alice, {alice})).ok());
  ASSERT_TRUE(InvokeCommit(bob, info.t0 + 10, MakeVote(bob, {bob})).ok());
  EXPECT_FALSE(contract->released());
  ASSERT_TRUE(
      InvokeCommit(carol, info.t0 + 10, MakeVote(carol, {carol})).ok());
  EXPECT_TRUE(contract->released());
  // The escrowed 50 returned to Alice (no tentative transfers were made).
  EXPECT_EQ(chain->As<FungibleToken>(token_id)->BalanceOf(
                Holder::Party(alice)),
            50u);
}

TEST_F(TimelockEscrowFixture, RefundOnlyAfterFullTimeout) {
  // N = 3 parties: refund allowed only at/after t0 + 3Δ.
  EXPECT_EQ(InvokeRefund(alice, info.t0 + 299).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(InvokeRefund(alice, info.t0 + 300).ok());
  EXPECT_TRUE(contract->refunded());
  EXPECT_EQ(chain->As<FungibleToken>(token_id)->BalanceOf(
                Holder::Party(alice)),
            50u);
  // Votes after settlement are rejected.
  EXPECT_EQ(InvokeCommit(alice, info.t0 + 310, MakeVote(alice, {alice})).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(TimelockEscrowFixture, AnyoneMayTriggerRefund) {
  EXPECT_TRUE(InvokeRefund(outsider, info.t0 + 300).ok());
  EXPECT_TRUE(contract->refunded());
}

TEST_F(TimelockEscrowFixture, EscrowDealInfoMismatchRejected) {
  // A second escrow call with different deal parameters must fail.
  info.delta = 999;
  EXPECT_EQ(InvokeEscrow(alice, 0, 1).code(), StatusCode::kFailedPrecondition);
}

TEST_F(TimelockEscrowFixture, NonPlistEscrowerRejected) {
  info.delta = 100;  // restore
  EXPECT_EQ(InvokeEscrow(outsider, 0, 5).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(TimelockEscrowFixture, TransferToNonPlistRejected) {
  ByteWriter w;
  w.Raw(info.deal_id.bytes.data(), 32);
  w.U32(outsider.v);
  w.U64(10);
  CallContext ctx = Ctx(alice, 5);
  ByteReader args(w.bytes());
  auto r = contract->Invoke(ctx, "transfer", args);
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(TimelockEscrowFixture, WrongDealIdRejected) {
  PathVote vote = MakeVote(alice, {alice});
  ByteWriter w;
  DealId other = MakeDealId("other", 2);
  w.Raw(other.bytes.data(), 32);
  vote.AppendTo(&w);
  CallContext ctx = Ctx(alice, info.t0 + 10);
  ByteReader args(w.bytes());
  auto r = contract->Invoke(ctx, "commit", args);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace xdeal
