// End-to-end timelock protocol (§5): the Figure 1 broker deal commits with
// compliant parties; aborts cleanly under deviations; safety (Property 1),
// weak liveness (Property 2), and strong liveness (Property 3) hold.

#include <gtest/gtest.h>

#include "core/adversaries.h"
#include "core/checker.h"
#include "core/timelock_run.h"
#include "tests/scenario_util.h"

namespace xdeal {
namespace {

TimelockConfig DefaultConfig() {
  TimelockConfig config;
  config.delta = 80;
  return config;
}

struct RunOutput {
  TimelockResult result;
  std::unique_ptr<DealChecker> checker;
  BrokerScenario scenario;
};

RunOutput RunBroker(uint64_t seed, TimelockRun::StrategyFactory factory,
                    TimelockConfig config = DefaultConfig()) {
  RunOutput out;
  out.scenario = MakeBrokerScenario(seed);
  auto& s = out.scenario;
  TimelockRun run(&s.env->world(), s.spec, config, std::move(factory));
  EXPECT_TRUE(run.Start().ok());
  out.checker = std::make_unique<DealChecker>(
      &s.env->world(), s.spec, run.deployment().escrow_contracts);
  out.checker->CaptureInitial();
  s.env->world().scheduler().Run();
  out.result = run.Collect();
  return out;
}

TEST(TimelockBrokerTest, AllCompliantCommits) {
  RunOutput out = RunBroker(7, nullptr);
  EXPECT_TRUE(out.result.all_settled);
  EXPECT_EQ(out.result.released_contracts, 2u);
  EXPECT_EQ(out.result.refunded_contracts, 0u);

  // Property 3: all transfers happen.
  EXPECT_TRUE(out.checker->StrongLivenessHolds());

  // Token-level: Carol owns both tickets, Bob has 100 coins, Alice 1.
  auto& s = out.scenario;
  auto* registry = s.env->RegistryOf(s.spec, s.tickets_asset);
  EXPECT_EQ(registry->OwnerOf(s.ticket1), Holder::Party(s.carol));
  EXPECT_EQ(registry->OwnerOf(s.ticket2), Holder::Party(s.carol));
  auto* coins = s.env->TokenOf(s.spec, s.coins_asset);
  EXPECT_EQ(coins->BalanceOf(Holder::Party(s.bob)), 100u);
  EXPECT_EQ(coins->BalanceOf(Holder::Party(s.alice)), 1u);
  EXPECT_EQ(coins->BalanceOf(Holder::Party(s.carol)), 0u);
}

TEST(TimelockBrokerTest, CommitAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    RunOutput out = RunBroker(seed, nullptr);
    EXPECT_TRUE(out.checker->StrongLivenessHolds()) << "seed " << seed;
  }
}

TEST(TimelockBrokerTest, VoteWithholderAborts) {
  // Carol never votes: every contract times out and refunds; nobody loses.
  auto out = RunBroker(3, [](PartyId p) -> std::unique_ptr<TimelockParty> {
    if (p.v == 2) return std::make_unique<VoteWithholdingParty>();  // carol
    return nullptr;
  });
  EXPECT_TRUE(out.result.all_settled);
  EXPECT_EQ(out.result.released_contracts, 0u);
  EXPECT_EQ(out.result.refunded_contracts, 2u);

  auto& s = out.scenario;
  std::vector<PartyId> compliant = {s.alice, s.bob};
  EXPECT_TRUE(out.checker->SafetyHolds(compliant));
  EXPECT_TRUE(out.checker->WeakLivenessHolds(compliant));
  // Everyone (even the deviator) ends where they started.
  for (PartyId p : s.spec.parties) {
    EXPECT_TRUE(out.checker->Evaluate(p).token_state_unchanged);
  }
}

TEST(TimelockBrokerTest, CrashAtEscrowAborts) {
  auto out = RunBroker(4, [](PartyId p) -> std::unique_ptr<TimelockParty> {
    if (p.v == 1) {  // bob never escrows
      return std::make_unique<CrashingTimelockParty>(TlPhase::kEscrow);
    }
    return nullptr;
  });
  EXPECT_EQ(out.result.released_contracts, 0u);
  auto& s = out.scenario;
  std::vector<PartyId> compliant = {s.alice, s.carol};
  EXPECT_TRUE(out.checker->SafetyHolds(compliant));
  EXPECT_TRUE(out.checker->WeakLivenessHolds(compliant));
  for (PartyId p : compliant) {
    EXPECT_TRUE(out.checker->Evaluate(p).token_state_unchanged);
  }
}

TEST(TimelockBrokerTest, CrashAtTransferAborts) {
  auto out = RunBroker(5, [](PartyId p) -> std::unique_ptr<TimelockParty> {
    if (p.v == 1) {
      return std::make_unique<CrashingTimelockParty>(TlPhase::kTransfer);
    }
    return nullptr;
  });
  EXPECT_EQ(out.result.released_contracts, 0u);
  auto& s = out.scenario;
  std::vector<PartyId> compliant = {s.alice, s.carol};
  EXPECT_TRUE(out.checker->SafetyHolds(compliant));
  EXPECT_TRUE(out.checker->WeakLivenessHolds(compliant));
}

TEST(TimelockBrokerTest, NonForwarderStillCommits) {
  // Alice refuses to forward votes; Bob and Carol's forwarding suffices
  // (and Alice's own votes reach both chains since she has incoming assets
  // on both).
  auto out = RunBroker(6, [](PartyId p) -> std::unique_ptr<TimelockParty> {
    if (p.v == 0) return std::make_unique<NonForwardingParty>();
    return nullptr;
  });
  EXPECT_EQ(out.result.released_contracts, 2u);
  EXPECT_TRUE(out.checker->StrongLivenessHolds());
}

TEST(TimelockBrokerTest, ShortTransferCausesAbort) {
  // Alice sends Bob 99 coins instead of 100: Bob's validation fails, he
  // never votes, everything refunds.
  auto out = RunBroker(8, [](PartyId p) -> std::unique_ptr<TimelockParty> {
    if (p.v == 0) return std::make_unique<ShortTransferParty>();
    return nullptr;
  });
  EXPECT_EQ(out.result.released_contracts, 0u);
  EXPECT_EQ(out.result.refunded_contracts, 2u);
  auto& s = out.scenario;
  std::vector<PartyId> compliant = {s.bob, s.carol};
  EXPECT_TRUE(out.checker->SafetyHolds(compliant));
  for (PartyId p : compliant) {
    EXPECT_TRUE(out.checker->Evaluate(p).token_state_unchanged);
  }
}

TEST(TimelockBrokerTest, DoubleSpendRejectedDealStillCommits) {
  // Bob tries to tentatively transfer the same tickets twice; the escrow
  // contract rejects the second transfer and the deal proceeds normally.
  auto out = RunBroker(9, [](PartyId p) -> std::unique_ptr<TimelockParty> {
    if (p.v == 1) return std::make_unique<DoubleSpendingParty>();
    return nullptr;
  });
  EXPECT_EQ(out.result.released_contracts, 2u);
  EXPECT_TRUE(out.checker->StrongLivenessHolds());

  // The conflicting transfer must have failed on-chain.
  auto& s = out.scenario;
  const Blockchain* chain =
      s.env->world().chain(s.spec.assets[s.tickets_asset].chain);
  size_t failed_transfers = 0;
  for (const Receipt& r : chain->receipts()) {
    if (r.function == "transfer" && !r.status.ok()) ++failed_transfers;
  }
  EXPECT_GT(failed_transfers, 0u);
}

TEST(TimelockBrokerTest, LateVoteAborts) {
  // Carol votes far too late (past t0 + N·Δ): contracts refuse her vote and
  // refund everyone.
  auto out = RunBroker(10, [](PartyId p) -> std::unique_ptr<TimelockParty> {
    if (p.v == 2) return std::make_unique<LateVotingParty>(10000);
    return nullptr;
  });
  EXPECT_EQ(out.result.released_contracts, 0u);
  EXPECT_EQ(out.result.refunded_contracts, 2u);
  auto& s = out.scenario;
  EXPECT_TRUE(out.checker->SafetyHolds({s.alice, s.bob}));
}

TEST(TimelockBrokerTest, DirectVotesCommitFaster) {
  TimelockConfig chained = DefaultConfig();
  TimelockConfig direct = DefaultConfig();
  direct.direct_votes = true;

  auto slow = RunBroker(11, nullptr, chained);
  auto fast = RunBroker(11, nullptr, direct);
  ASSERT_TRUE(slow.result.all_settled);
  ASSERT_TRUE(fast.result.all_settled);
  EXPECT_TRUE(fast.checker->StrongLivenessHolds());
  // Direct (altruistic) voting never needs the forwarding chain, so the
  // commit phase cannot finish later than the chained run.
  EXPECT_LE(fast.result.commit_phase_end, slow.result.commit_phase_end);
}

TEST(TimelockBrokerTest, RefundAfterTimeoutIsIdempotent) {
  // Two parties race to claim the refund; the second claim fails cleanly.
  auto out = RunBroker(12, [](PartyId p) -> std::unique_ptr<TimelockParty> {
    if (p.v == 0) return std::make_unique<VoteWithholdingParty>();
    return nullptr;
  });
  EXPECT_EQ(out.result.refunded_contracts, 2u);
  // All compliant balances intact.
  auto& s = out.scenario;
  EXPECT_TRUE(out.checker->Evaluate(s.bob).token_state_unchanged);
  EXPECT_TRUE(out.checker->Evaluate(s.carol).token_state_unchanged);
}

}  // namespace
}  // namespace xdeal
