// FungibleToken (ERC20-style) and TicketRegistry (ERC721-style) semantics,
// including allowance/approval enforcement and gas charging.

#include <gtest/gtest.h>

#include "chain/world.h"
#include "contracts/fungible_token.h"
#include "contracts/ticket_registry.h"

namespace xdeal {
namespace {

struct TokenFixture : public ::testing::Test {
  void SetUp() override {
    world = std::make_unique<World>(
        1, std::make_unique<SynchronousNetwork>(1, 5));
    alice = world->RegisterParty("alice");
    bob = world->RegisterParty("bob");
    chain = world->CreateChain("c", 10);
    gas = std::make_unique<GasMeter>();
    ctx.world = world.get();
    ctx.chain = chain;
    ctx.sender = alice;
    ctx.now = 0;
    ctx.gas = gas.get();
  }

  Holder A() const { return Holder::Party(alice); }
  Holder B() const { return Holder::Party(bob); }

  std::unique_ptr<World> world;
  PartyId alice, bob;
  Blockchain* chain = nullptr;
  std::unique_ptr<GasMeter> gas;
  CallContext ctx;
};

TEST_F(TokenFixture, MintAndTransfer) {
  FungibleToken token("TOK", alice);
  ASSERT_TRUE(token.Mint(A(), 100).ok());
  EXPECT_EQ(token.total_supply(), 100u);
  EXPECT_TRUE(token.Transfer(ctx, A(), A(), B(), 40).ok());
  EXPECT_EQ(token.BalanceOf(A()), 60u);
  EXPECT_EQ(token.BalanceOf(B()), 40u);
}

TEST_F(TokenFixture, TransferInsufficientBalanceFails) {
  FungibleToken token("TOK", alice);
  token.Mint(A(), 10);
  EXPECT_EQ(token.Transfer(ctx, A(), A(), B(), 11).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(token.BalanceOf(A()), 10u);
}

TEST_F(TokenFixture, TransferByNonOwnerFails) {
  FungibleToken token("TOK", alice);
  token.Mint(A(), 10);
  EXPECT_EQ(token.Transfer(ctx, B(), A(), B(), 5).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(TokenFixture, TransferFromRequiresAllowance) {
  FungibleToken token("TOK", alice);
  token.Mint(A(), 100);
  Holder escrow = Holder::OfContract(ContractId{9});

  EXPECT_EQ(token.TransferFrom(ctx, escrow, A(), escrow, 50).code(),
            StatusCode::kPermissionDenied);

  ASSERT_TRUE(token.Approve(ctx, A(), A(), escrow, 60).ok());
  EXPECT_EQ(token.Allowance(A(), escrow), 60u);
  EXPECT_TRUE(token.TransferFrom(ctx, escrow, A(), escrow, 50).ok());
  EXPECT_EQ(token.Allowance(A(), escrow), 10u);
  EXPECT_EQ(token.BalanceOf(escrow), 50u);

  // Remaining allowance is insufficient for another 50.
  EXPECT_EQ(token.TransferFrom(ctx, escrow, A(), escrow, 50).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(TokenFixture, TransferFromOwnBalanceNeedsNoAllowance) {
  FungibleToken token("TOK", alice);
  token.Mint(A(), 100);
  EXPECT_TRUE(token.TransferFrom(ctx, A(), A(), B(), 30).ok());
  EXPECT_EQ(token.BalanceOf(B()), 30u);
}

TEST_F(TokenFixture, TransferChargesTwoWrites) {
  FungibleToken token("TOK", alice);
  token.Mint(A(), 100);
  uint64_t before = gas->used();
  ASSERT_TRUE(token.Transfer(ctx, A(), A(), B(), 1).ok());
  // 1 read (200) + 2 writes (10000).
  EXPECT_EQ(gas->used() - before, 10200u);
}

TEST_F(TokenFixture, ApproveOnlyByOwner) {
  FungibleToken token("TOK", alice);
  EXPECT_EQ(token.Approve(ctx, B(), A(), B(), 5).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(TokenFixture, TicketMintOwnership) {
  TicketRegistry registry(alice);
  uint64_t t1 = registry.Mint(A(), {"play", "A1", 90});
  uint64_t t2 = registry.Mint(B(), {"play", "B7", 60});
  EXPECT_NE(t1, t2);
  EXPECT_EQ(registry.OwnerOf(t1), A());
  EXPECT_EQ(registry.OwnerOf(t2), B());
  EXPECT_FALSE(registry.OwnerOf(999).valid());
  EXPECT_EQ(registry.InfoOf(t1).value().seat, "A1");
  EXPECT_FALSE(registry.InfoOf(999).ok());
  EXPECT_EQ(registry.TicketsOwnedBy(A()), (std::vector<uint64_t>{t1}));
}

TEST_F(TokenFixture, TicketTransferRules) {
  TicketRegistry registry(alice);
  uint64_t t1 = registry.Mint(A(), {"play", "A1", 90});

  // Non-owner, non-approved cannot move it.
  EXPECT_EQ(registry.TransferFrom(ctx, B(), A(), B(), t1).code(),
            StatusCode::kPermissionDenied);
  // Wrong `from` fails.
  EXPECT_EQ(registry.TransferFrom(ctx, A(), B(), A(), t1).code(),
            StatusCode::kFailedPrecondition);
  // Owner moves it.
  EXPECT_TRUE(registry.TransferFrom(ctx, A(), A(), B(), t1).ok());
  EXPECT_EQ(registry.OwnerOf(t1), B());
}

TEST_F(TokenFixture, TicketApprovalSingleUse) {
  TicketRegistry registry(alice);
  uint64_t t1 = registry.Mint(A(), {"play", "A1", 90});
  Holder escrow = Holder::OfContract(ContractId{3});

  // Only the owner can approve.
  EXPECT_EQ(registry.Approve(ctx, B(), t1, escrow).code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE(registry.Approve(ctx, A(), t1, escrow).ok());
  EXPECT_TRUE(registry.IsApproved(t1, escrow));

  ASSERT_TRUE(registry.TransferFrom(ctx, escrow, A(), escrow, t1).ok());
  EXPECT_EQ(registry.OwnerOf(t1), escrow);
  // Approval cleared on transfer.
  EXPECT_FALSE(registry.IsApproved(t1, escrow));
}

TEST_F(TokenFixture, OnChainInvokeTransfer) {
  // Exercise the serialized Invoke path end-to-end through the chain.
  ContractId token_id =
      chain->Deploy(std::make_unique<FungibleToken>("TOK", alice));
  chain->As<FungibleToken>(token_id)->Mint(A(), 100);

  ByteWriter w;
  w.U8(static_cast<uint8_t>(B().kind));
  w.U32(B().id);
  w.U64(25);
  world->Submit(alice, chain->id(), token_id, CallData{"transfer", w.Take()});
  world->scheduler().Run();

  EXPECT_EQ(chain->As<FungibleToken>(token_id)->BalanceOf(B()), 25u);
}

TEST_F(TokenFixture, InvokeRejectsMalformedArgs) {
  ContractId token_id =
      chain->Deploy(std::make_unique<FungibleToken>("TOK", alice));
  world->Submit(alice, chain->id(), token_id,
                CallData{"transfer", Bytes{1, 2}});  // truncated
  world->Submit(alice, chain->id(), token_id, CallData{"nosuchfn", {}});
  world->scheduler().Run();
  ASSERT_EQ(chain->receipts().size(), 2u);
  // Both calls fail; block order depends on sampled network delays.
  for (const Receipt& r : chain->receipts()) {
    EXPECT_FALSE(r.status.ok());
    if (r.function == "nosuchfn") {
      EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
    } else {
      EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
    }
  }
}

}  // namespace
}  // namespace xdeal
