// TrafficEngine: ≥100 concurrent deals on shared chains conform with zero
// property violations, reports are bit-identical across thread counts, a
// seeded cross-deal double-spend is caught from on-chain evidence and
// replays from its reported seed, per-deal gas tagging is complete, and
// tight block capacity surfaces queueing-stretched deadlines.

#include <gtest/gtest.h>

#include <set>

#include "chain/world.h"
#include "core/traffic_engine.h"

namespace xdeal {
namespace {

TrafficOptions SmallOptions() {
  TrafficOptions options;
  options.base_seed = 21;
  options.num_deals = 24;
  options.num_chains = 6;
  return options;
}

TEST(TrafficEngineTest, DealSeedsAreStableAndDistinct) {
  std::set<uint64_t> seeds;
  for (uint64_t d = 0; d < 1000; ++d) {
    uint64_t seed = TrafficDealSeed(7, d);
    EXPECT_EQ(seed, TrafficDealSeed(7, d));
    EXPECT_NE(seed, 0u);
    seeds.insert(seed);
  }
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(TrafficDealSeed(7, 0), TrafficDealSeed(8, 0));
}

TEST(TrafficEngineTest, HundredConcurrentDealsConform) {
  TrafficOptions options;
  options.base_seed = 3;
  options.num_deals = 100;
  options.num_chains = 8;
  TrafficReport report = RunTraffic(options);

  ASSERT_EQ(report.deals.size(), 100u);
  EXPECT_GT(report.timelock_deals, 0u);
  EXPECT_GT(report.cbc_deals, 0u);
  // Compliant deals under ample Δ and unlimited block capacity all commit:
  // zero Property-1/2/3 violations despite full interleaving.
  EXPECT_EQ(report.committed, 100u) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  EXPECT_TRUE(report.double_spends.empty()) << report.Summary();
  for (const TrafficDealRecord& rec : report.deals) {
    EXPECT_TRUE(rec.started);
    EXPECT_TRUE(rec.all_settled) << "deal " << rec.index;
    EXPECT_GT(rec.latency, 0u) << "deal " << rec.index;
  }
}

TEST(TrafficEngineTest, ReportBitIdenticalAcrossThreadCounts) {
  TrafficOptions one = SmallOptions();
  one.num_threads = 1;
  TrafficReport baseline = RunTraffic(one);

  for (size_t threads : {2u, 8u}) {
    TrafficOptions opts = SmallOptions();
    opts.num_threads = threads;
    TrafficReport report = RunTraffic(opts);
    EXPECT_EQ(report.fingerprint, baseline.fingerprint)
        << "threads=" << threads;
    EXPECT_EQ(report.Summary(), baseline.Summary()) << "threads=" << threads;
    EXPECT_EQ(report.violations.size(), baseline.violations.size());
    ASSERT_EQ(report.deals.size(), baseline.deals.size());
    for (size_t d = 0; d < report.deals.size(); ++d) {
      EXPECT_EQ(report.deals[d].gas, baseline.deals[d].gas);
      EXPECT_EQ(report.deals[d].settle_time, baseline.deals[d].settle_time);
      EXPECT_EQ(report.deals[d].violation, baseline.deals[d].violation);
    }
  }
}

TEST(TrafficEngineTest, PerDealGasTaggingIsComplete) {
  // Every transaction a run submits carries its deal tag: the engine
  // attributes each receipt's gas either to its deal or to the untagged
  // bucket, so untagged_gas == 0 means the per-deal accounting covers the
  // World's entire gas consumption with nothing leaking between deals.
  TrafficReport report = RunTraffic(SmallOptions());
  EXPECT_EQ(report.untagged_gas, 0u);
  uint64_t per_deal = 0;
  for (const TrafficDealRecord& rec : report.deals) per_deal += rec.gas;
  EXPECT_EQ(per_deal, report.total_gas);
  EXPECT_GT(report.total_gas, 0u);
  // Gas percentiles come from the same per-deal attribution.
  EXPECT_GE(report.gas_p99, report.gas_p50);
  EXPECT_GT(report.gas_p50, 0u);
}

TEST(TrafficEngineTest, StaggeredAdmissionInterleavesDeals) {
  TrafficOptions options = SmallOptions();
  options.admission_gap = 20;
  TrafficReport report = RunTraffic(options);
  // With a 20-tick gap and deals needing hundreds of ticks to settle, many
  // deals are admitted before the first one finishes: concurrency is real.
  ASSERT_EQ(report.deals.size(), options.num_deals);
  size_t admitted_while_first_in_flight = 0;
  for (const TrafficDealRecord& rec : report.deals) {
    if (rec.index > 0 && rec.admitted_at < report.deals[0].settle_time) {
      ++admitted_while_first_in_flight;
    }
  }
  EXPECT_GE(admitted_while_first_in_flight, 10u)
      << "first deal settled at " << report.deals[0].settle_time;
  EXPECT_GT(report.max_backlog, 0u);
  EXPECT_GT(report.events_executed, 0u);
}

TEST(TrafficEngineTest, CrossDealDoubleSpendCaughtAndReplayed) {
  TrafficOptions options;
  options.base_seed = 17;
  options.num_deals = 12;
  options.num_chains = 4;
  options.double_spend_deals = {5};
  TrafficReport report = RunTraffic(options);

  // The over-committed escrow bounced in exactly one of the two deals and
  // the engine cross-referenced the receipts into an incident.
  ASSERT_EQ(report.double_spends.size(), 1u) << report.Summary();
  const DoubleSpendIncident& incident = report.double_spends[0];
  std::set<size_t> pair = {incident.loser_deal, incident.winner_deal};
  EXPECT_TRUE(pair.count(4) == 1 && pair.count(5) == 1) << report.Summary();
  EXPECT_EQ(incident.seed, report.deals[incident.loser_deal].seed);

  // Both touched deals are tainted; the loser aborts cleanly, and no
  // compliant party anywhere is harmed (Properties 1-2 hold workload-wide).
  EXPECT_TRUE(report.deals[4].tainted);
  EXPECT_TRUE(report.deals[5].tainted);
  EXPECT_TRUE(report.deals[incident.loser_deal].aborted) << report.Summary();
  EXPECT_TRUE(report.deals[incident.winner_deal].committed)
      << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();

  // Replay from the reported configuration: the incident reproduces
  // bit-for-bit (same fingerprint, same incident, same loser seed).
  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
  ASSERT_EQ(replay.double_spends.size(), 1u);
  EXPECT_EQ(replay.double_spends[0].loser_deal, incident.loser_deal);
  EXPECT_EQ(replay.double_spends[0].winner_deal, incident.winner_deal);
  EXPECT_EQ(replay.double_spends[0].party, incident.party);
  EXPECT_EQ(replay.double_spends[0].seed, incident.seed);
}

TEST(TrafficEngineTest, UntaintedDealsUnharmedByDoubleSpendPressure) {
  TrafficOptions options;
  options.base_seed = 29;
  options.num_deals = 16;
  options.num_chains = 4;
  options.double_spend_deals = {3, 9};
  TrafficReport report = RunTraffic(options);

  ASSERT_EQ(report.double_spends.size(), 2u) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  for (const TrafficDealRecord& rec : report.deals) {
    if (!rec.tainted) {
      EXPECT_TRUE(rec.committed) << "deal " << rec.index << "\n"
                                 << report.Summary();
    }
  }
}

TEST(TrafficEngineTest, TightBlockCapacityStretchesDeadlines) {
  // Starve the chains: one transaction per block. Queueing pushes escrow
  // and vote inclusion far past the schedule, which the per-deal checkers
  // surface as conformance failures carrying reproducer seeds — the
  // cross-deal interference single-deal sweeps cannot see.
  TrafficOptions options;
  options.base_seed = 11;
  options.num_deals = 20;
  options.num_chains = 2;
  options.block_capacity = 1;
  options.admission_gap = 5;
  options.protocol_mix = {Protocol::kTimelock};
  TrafficReport report = RunTraffic(options);

  // Under this much congestion not every deal can commit on schedule.
  EXPECT_LT(report.committed, report.num_deals) << report.Summary();
  ASSERT_FALSE(report.violations.empty()) << report.Summary();
  for (const TrafficViolation& v : report.violations) {
    EXPECT_EQ(v.seed, TrafficDealSeed(options.base_seed, v.deal_index));
  }
  // The backlog probe saw the pressure.
  EXPECT_GT(report.max_backlog, 20u);

  // Same options + seed replay the exact same congestion outcome.
  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
  ASSERT_EQ(replay.violations.size(), report.violations.size());
  for (size_t i = 0; i < report.violations.size(); ++i) {
    EXPECT_EQ(replay.violations[i].deal_index,
              report.violations[i].deal_index);
    EXPECT_EQ(replay.violations[i].what, report.violations[i].what);
  }
}

TEST(TrafficEngineTest, LargeDeltaScalesCbcAbortPatience) {
  // options.delta feeds both protocols' schedules now; a Δ above the stock
  // CBC abort patience (400) must scale the patience up rather than make
  // every CBC deal fail the §6 patience >= Δ precondition at deploy time.
  TrafficOptions options = SmallOptions();
  options.delta = 500;
  TrafficReport report = RunTraffic(options);
  EXPECT_EQ(report.committed, options.num_deals) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
}

TEST(TrafficEngineTest, SingleShardReproducesPreRedesignFingerprints) {
  // Golden fingerprints captured from the pre-ProtocolDriver engine (PR 2's
  // traffic_engine.cc, direct TimelockRun/CbcRun dispatch, single shared
  // CBC chain). The redesign contract: with cbc_shards = 1 the new code
  // path reproduces those reports bit-for-bit.
  {
    TrafficOptions options;
    options.base_seed = 101;
    options.num_deals = 40;
    options.num_chains = 6;
    TrafficReport report = RunTraffic(options);
    EXPECT_EQ(report.fingerprint, 0xf2e05a9b400cccdeULL)
        << report.Summary();
    EXPECT_EQ(report.committed, 40u);
    EXPECT_TRUE(report.violations.empty());
  }
  {
    TrafficOptions options;
    options.base_seed = 202;
    options.num_deals = 30;
    options.num_chains = 4;
    options.protocol_mix = {Protocol::kCbc};
    TrafficReport report = RunTraffic(options);
    EXPECT_EQ(report.fingerprint, 0x0c2664eed3179051ULL)
        << report.Summary();
    EXPECT_EQ(report.committed, 30u);
    EXPECT_TRUE(report.violations.empty());
  }
}

TEST(TrafficEngineTest, ShardedCbcStaysConformantAndDeterministic) {
  TrafficOptions options;
  options.base_seed = 33;
  options.num_deals = 32;
  options.num_chains = 6;
  options.cbc_shards = 4;
  options.protocol_mix = {Protocol::kCbc};
  TrafficReport report = RunTraffic(options);

  EXPECT_EQ(report.cbc_shards, 4u);
  EXPECT_EQ(report.committed, 32u) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  EXPECT_EQ(report.untagged_gas, 0u);

  // Same options replay bit-for-bit, and validation thread counts still
  // cannot change the report.
  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
  options.num_threads = 8;
  TrafficReport threaded = RunTraffic(options);
  EXPECT_EQ(threaded.fingerprint, report.fingerprint);
}

TEST(TrafficEngineTest, ShardCountChangesTopologyNotOutcomes) {
  // Different shard counts relocate the CBC logs (different fingerprints
  // are expected — chain ids and observation interleavings move), but the
  // workload must stay fully conformant at every S.
  for (size_t shards : {1u, 2u, 8u}) {
    TrafficOptions options;
    options.base_seed = 44;
    options.num_deals = 24;
    options.num_chains = 4;
    options.cbc_shards = shards;
    options.protocol_mix = {Protocol::kCbc};
    TrafficReport report = RunTraffic(options);
    EXPECT_EQ(report.committed, 24u) << "shards=" << shards << "\n"
                                     << report.Summary();
    EXPECT_TRUE(report.violations.empty()) << "shards=" << shards;
  }
}

TEST(TrafficEngineTest, OfflinePartyDealStrandedWithoutWatchtower) {
  TrafficOptions options;
  options.base_seed = 55;
  options.num_deals = 8;
  options.num_chains = 4;
  options.protocol_mix = {Protocol::kTimelock};
  options.offline_party_deals = {3};
  TrafficReport report = RunTraffic(options);

  // The offline escrower's deposit is stranded: nobody claims its refund,
  // so deal 3 never fully settles. The deal is tainted (its own party
  // deviated), so this is not a property violation — just locked value.
  const TrafficDealRecord& rec = report.deals[3];
  EXPECT_TRUE(rec.tainted);
  EXPECT_FALSE(rec.committed) << report.Summary();
  EXPECT_FALSE(rec.all_settled) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  // Untouched deals commit as usual.
  for (const TrafficDealRecord& other : report.deals) {
    if (!other.tainted) EXPECT_TRUE(other.committed);
  }
}

TEST(TrafficEngineTest, WatchtowerRescuesOfflinePartyDealUnderTraffic) {
  TrafficOptions options;
  options.base_seed = 55;
  options.num_deals = 8;
  options.num_chains = 4;
  options.protocol_mix = {Protocol::kTimelock};
  options.offline_party_deals = {3};
  options.watchtower_every = 1;  // every timelock deal guarded
  TrafficReport report = RunTraffic(options);

  // Same workload, but the tower claims the stranded refund on the dark
  // party's behalf: the deal aborts cleanly and fully settles.
  const TrafficDealRecord& rec = report.deals[3];
  EXPECT_TRUE(rec.tainted);
  EXPECT_TRUE(rec.aborted) << report.Summary();
  EXPECT_TRUE(rec.all_settled) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  // Towers are harmless to the healthy deals, and their transactions are
  // tagged to the deals they guard (no gas leaks out of the accounting).
  EXPECT_EQ(report.untagged_gas, 0u);
  for (const TrafficDealRecord& other : report.deals) {
    if (!other.tainted) EXPECT_TRUE(other.committed) << other.index;
  }

  // Determinism holds with towers in play.
  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
}

TEST(TrafficEngineTest, ProtocolMixIsRespected) {
  TrafficOptions options = SmallOptions();
  options.protocol_mix = {Protocol::kCbc};
  TrafficReport report = RunTraffic(options);
  EXPECT_EQ(report.cbc_deals, options.num_deals);
  EXPECT_EQ(report.timelock_deals, 0u);
  EXPECT_EQ(report.committed, options.num_deals) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
}

}  // namespace
}  // namespace xdeal
