// TrafficEngine: ≥100 concurrent deals on shared chains conform with zero
// property violations, reports are bit-identical across thread counts, a
// seeded cross-deal double-spend is caught from on-chain evidence and
// replays from its reported seed, per-deal gas tagging is complete, and
// tight block capacity surfaces queueing-stretched deadlines.

#include <gtest/gtest.h>

#include <set>

#include "chain/world.h"
#include "core/traffic_engine.h"
#include "golden_fps.h"

namespace xdeal {
namespace {

TrafficOptions SmallOptions() {
  TrafficOptions options;
  options.base_seed = 21;
  options.num_deals = 24;
  options.num_chains = 6;
  return options;
}

TEST(TrafficEngineTest, DealSeedsAreStableAndDistinct) {
  std::set<uint64_t> seeds;
  for (uint64_t d = 0; d < 1000; ++d) {
    uint64_t seed = TrafficDealSeed(7, d);
    EXPECT_EQ(seed, TrafficDealSeed(7, d));
    EXPECT_NE(seed, 0u);
    seeds.insert(seed);
  }
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(TrafficDealSeed(7, 0), TrafficDealSeed(8, 0));
}

TEST(TrafficEngineTest, HundredConcurrentDealsConform) {
  TrafficOptions options;
  options.base_seed = 3;
  options.num_deals = 100;
  options.num_chains = 8;
  TrafficReport report = RunTraffic(options);

  ASSERT_EQ(report.deals.size(), 100u);
  EXPECT_GT(report.timelock_deals, 0u);
  EXPECT_GT(report.cbc_deals, 0u);
  // Compliant deals under ample Δ and unlimited block capacity all commit:
  // zero Property-1/2/3 violations despite full interleaving.
  EXPECT_EQ(report.committed, 100u) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  EXPECT_TRUE(report.double_spends.empty()) << report.Summary();
  for (const TrafficDealRecord& rec : report.deals) {
    EXPECT_TRUE(rec.started);
    EXPECT_TRUE(rec.all_settled) << "deal " << rec.index;
    EXPECT_GT(rec.latency, 0u) << "deal " << rec.index;
  }
}

TEST(TrafficEngineTest, ReportBitIdenticalAcrossThreadCounts) {
  TrafficOptions one = SmallOptions();
  one.num_threads = 1;
  TrafficReport baseline = RunTraffic(one);

  for (size_t threads : {2u, 8u}) {
    TrafficOptions opts = SmallOptions();
    opts.num_threads = threads;
    TrafficReport report = RunTraffic(opts);
    EXPECT_EQ(report.fingerprint, baseline.fingerprint)
        << "threads=" << threads;
    EXPECT_EQ(report.Summary(), baseline.Summary()) << "threads=" << threads;
    EXPECT_EQ(report.violations.size(), baseline.violations.size());
    ASSERT_EQ(report.deals.size(), baseline.deals.size());
    for (size_t d = 0; d < report.deals.size(); ++d) {
      EXPECT_EQ(report.deals[d].gas, baseline.deals[d].gas);
      EXPECT_EQ(report.deals[d].settle_time, baseline.deals[d].settle_time);
      EXPECT_EQ(report.deals[d].violation, baseline.deals[d].violation);
    }
  }
}

TEST(TrafficEngineTest, PerDealGasTaggingIsComplete) {
  // Every transaction a run submits carries its deal tag: the engine
  // attributes each receipt's gas either to its deal or to the untagged
  // bucket, so untagged_gas == 0 means the per-deal accounting covers the
  // World's entire gas consumption with nothing leaking between deals.
  TrafficReport report = RunTraffic(SmallOptions());
  EXPECT_EQ(report.untagged_gas, 0u);
  uint64_t per_deal = 0;
  for (const TrafficDealRecord& rec : report.deals) per_deal += rec.gas;
  EXPECT_EQ(per_deal, report.total_gas);
  EXPECT_GT(report.total_gas, 0u);
  // Gas percentiles come from the same per-deal attribution.
  EXPECT_GE(report.gas_p99, report.gas_p50);
  EXPECT_GT(report.gas_p50, 0u);
}

TEST(TrafficEngineTest, StaggeredAdmissionInterleavesDeals) {
  TrafficOptions options = SmallOptions();
  options.admission_gap = 20;
  TrafficReport report = RunTraffic(options);
  // With a 20-tick gap and deals needing hundreds of ticks to settle, many
  // deals are admitted before the first one finishes: concurrency is real.
  ASSERT_EQ(report.deals.size(), options.num_deals);
  size_t admitted_while_first_in_flight = 0;
  for (const TrafficDealRecord& rec : report.deals) {
    if (rec.index > 0 && rec.admitted_at < report.deals[0].settle_time) {
      ++admitted_while_first_in_flight;
    }
  }
  EXPECT_GE(admitted_while_first_in_flight, 10u)
      << "first deal settled at " << report.deals[0].settle_time;
  EXPECT_GT(report.max_backlog, 0u);
  EXPECT_GT(report.events_executed, 0u);
}

TEST(TrafficEngineTest, CrossDealDoubleSpendCaughtAndReplayed) {
  TrafficOptions options;
  options.base_seed = 17;
  options.num_deals = 12;
  options.num_chains = 4;
  options.double_spend_deals = {5};
  TrafficReport report = RunTraffic(options);

  // The over-committed escrow bounced in exactly one of the two deals and
  // the engine cross-referenced the receipts into an incident.
  ASSERT_EQ(report.double_spends.size(), 1u) << report.Summary();
  const DoubleSpendIncident& incident = report.double_spends[0];
  std::set<size_t> pair = {incident.loser_deal, incident.winner_deal};
  EXPECT_TRUE(pair.count(4) == 1 && pair.count(5) == 1) << report.Summary();
  EXPECT_EQ(incident.seed, report.deals[incident.loser_deal].seed);

  // Both touched deals are tainted; the loser aborts cleanly, and no
  // compliant party anywhere is harmed (Properties 1-2 hold workload-wide).
  EXPECT_TRUE(report.deals[4].tainted);
  EXPECT_TRUE(report.deals[5].tainted);
  EXPECT_TRUE(report.deals[incident.loser_deal].aborted) << report.Summary();
  EXPECT_TRUE(report.deals[incident.winner_deal].committed)
      << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();

  // Replay from the reported configuration: the incident reproduces
  // bit-for-bit (same fingerprint, same incident, same loser seed).
  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
  ASSERT_EQ(replay.double_spends.size(), 1u);
  EXPECT_EQ(replay.double_spends[0].loser_deal, incident.loser_deal);
  EXPECT_EQ(replay.double_spends[0].winner_deal, incident.winner_deal);
  EXPECT_EQ(replay.double_spends[0].party, incident.party);
  EXPECT_EQ(replay.double_spends[0].seed, incident.seed);
}

TEST(TrafficEngineTest, UntaintedDealsUnharmedByDoubleSpendPressure) {
  TrafficOptions options;
  options.base_seed = 29;
  options.num_deals = 16;
  options.num_chains = 4;
  options.double_spend_deals = {3, 9};
  TrafficReport report = RunTraffic(options);

  ASSERT_EQ(report.double_spends.size(), 2u) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  for (const TrafficDealRecord& rec : report.deals) {
    if (!rec.tainted) {
      EXPECT_TRUE(rec.committed) << "deal " << rec.index << "\n"
                                 << report.Summary();
    }
  }
}

TEST(TrafficEngineTest, TightBlockCapacityStretchesDeadlines) {
  // Starve the chains: one transaction per block. Queueing pushes escrow
  // and vote inclusion far past the schedule, which the per-deal checkers
  // surface as conformance failures carrying reproducer seeds — the
  // cross-deal interference single-deal sweeps cannot see.
  TrafficOptions options;
  options.base_seed = 11;
  options.num_deals = 20;
  options.num_chains = 2;
  options.block_capacity = 1;
  options.admission_gap = 5;
  options.protocol_mix = {Protocol::kTimelock};
  TrafficReport report = RunTraffic(options);

  // Under this much congestion not every deal can commit on schedule.
  EXPECT_LT(report.committed, report.num_deals) << report.Summary();
  ASSERT_FALSE(report.violations.empty()) << report.Summary();
  for (const TrafficViolation& v : report.violations) {
    EXPECT_EQ(v.seed, TrafficDealSeed(options.base_seed, v.deal_index));
  }
  // The backlog probe saw the pressure.
  EXPECT_GT(report.max_backlog, 20u);

  // Same options + seed replay the exact same congestion outcome.
  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
  ASSERT_EQ(replay.violations.size(), report.violations.size());
  for (size_t i = 0; i < report.violations.size(); ++i) {
    EXPECT_EQ(replay.violations[i].deal_index,
              report.violations[i].deal_index);
    EXPECT_EQ(replay.violations[i].what, report.violations[i].what);
  }
}

TEST(TrafficEngineTest, LargeDeltaScalesCbcAbortPatience) {
  // options.delta feeds both protocols' schedules now; a Δ above the stock
  // CBC abort patience (400) must scale the patience up rather than make
  // every CBC deal fail the §6 patience >= Δ precondition at deploy time.
  TrafficOptions options = SmallOptions();
  options.delta = 500;
  TrafficReport report = RunTraffic(options);
  EXPECT_EQ(report.committed, options.num_deals) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
}

TEST(TrafficEngineTest, SingleShardReproducesPreRedesignFingerprints) {
  // Golden fingerprints captured from the pre-ProtocolDriver engine (PR 2's
  // traffic_engine.cc, direct TimelockRun/CbcRun dispatch, single shared
  // CBC chain). The redesign contract: with cbc_shards = 1 the new code
  // path reproduces those reports bit-for-bit.
  {
    TrafficOptions options;
    options.base_seed = 101;
    options.num_deals = 40;
    options.num_chains = 6;
    TrafficReport report = RunTraffic(options);
    EXPECT_EQ(report.fingerprint, kGoldenFpMixedSeed101)
        << report.Summary();
    EXPECT_EQ(report.committed, 40u);
    EXPECT_TRUE(report.violations.empty());
  }
  {
    TrafficOptions options;
    options.base_seed = 202;
    options.num_deals = 30;
    options.num_chains = 4;
    options.protocol_mix = {Protocol::kCbc};
    TrafficReport report = RunTraffic(options);
    EXPECT_EQ(report.fingerprint, kGoldenFpCbcSeed202)
        << report.Summary();
    EXPECT_EQ(report.committed, 30u);
    EXPECT_TRUE(report.violations.empty());
  }
}

TEST(TrafficEngineTest, ShardedCbcStaysConformantAndDeterministic) {
  TrafficOptions options;
  options.base_seed = 33;
  options.num_deals = 32;
  options.num_chains = 6;
  options.cbc_shards = 4;
  options.protocol_mix = {Protocol::kCbc};
  TrafficReport report = RunTraffic(options);

  EXPECT_EQ(report.cbc_shards, 4u);
  EXPECT_EQ(report.committed, 32u) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  EXPECT_EQ(report.untagged_gas, 0u);

  // Same options replay bit-for-bit, and validation thread counts still
  // cannot change the report.
  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
  options.num_threads = 8;
  TrafficReport threaded = RunTraffic(options);
  EXPECT_EQ(threaded.fingerprint, report.fingerprint);
}

TEST(TrafficEngineTest, ShardCountChangesTopologyNotOutcomes) {
  // Different shard counts relocate the CBC logs (different fingerprints
  // are expected — chain ids and observation interleavings move), but the
  // workload must stay fully conformant at every S.
  for (size_t shards : {1u, 2u, 8u}) {
    TrafficOptions options;
    options.base_seed = 44;
    options.num_deals = 24;
    options.num_chains = 4;
    options.cbc_shards = shards;
    options.protocol_mix = {Protocol::kCbc};
    TrafficReport report = RunTraffic(options);
    EXPECT_EQ(report.committed, 24u) << "shards=" << shards << "\n"
                                     << report.Summary();
    EXPECT_TRUE(report.violations.empty()) << "shards=" << shards;
  }
}

TEST(TrafficEngineTest, OfflinePartyDealStrandedWithoutWatchtower) {
  TrafficOptions options;
  options.base_seed = 55;
  options.num_deals = 8;
  options.num_chains = 4;
  options.protocol_mix = {Protocol::kTimelock};
  options.offline_party_deals = {3};
  TrafficReport report = RunTraffic(options);

  // The offline escrower's deposit is stranded: nobody claims its refund,
  // so deal 3 never fully settles. The deal is tainted (its own party
  // deviated), so this is not a property violation — just locked value.
  const TrafficDealRecord& rec = report.deals[3];
  EXPECT_TRUE(rec.tainted);
  EXPECT_FALSE(rec.committed) << report.Summary();
  EXPECT_FALSE(rec.all_settled) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  // Untouched deals commit as usual.
  for (const TrafficDealRecord& other : report.deals) {
    if (!other.tainted) EXPECT_TRUE(other.committed);
  }
}

TEST(TrafficEngineTest, WatchtowerRescuesOfflinePartyDealUnderTraffic) {
  TrafficOptions options;
  options.base_seed = 55;
  options.num_deals = 8;
  options.num_chains = 4;
  options.protocol_mix = {Protocol::kTimelock};
  options.offline_party_deals = {3};
  options.watchtower_every = 1;  // every timelock deal guarded
  TrafficReport report = RunTraffic(options);

  // Same workload, but the tower claims the stranded refund on the dark
  // party's behalf: the deal aborts cleanly and fully settles.
  const TrafficDealRecord& rec = report.deals[3];
  EXPECT_TRUE(rec.tainted);
  EXPECT_TRUE(rec.aborted) << report.Summary();
  EXPECT_TRUE(rec.all_settled) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  // Towers are harmless to the healthy deals, and their transactions are
  // tagged to the deals they guard (no gas leaks out of the accounting).
  EXPECT_EQ(report.untagged_gas, 0u);
  for (const TrafficDealRecord& other : report.deals) {
    if (!other.tainted) EXPECT_TRUE(other.committed) << other.index;
  }

  // Determinism holds with towers in play.
  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
}

// --- open-loop arrivals + admission control ---

TrafficOptions CongestedOpenLoopOptions() {
  // High offered load against tight block capacity: without backpressure
  // the tx queues grow, inclusion delays stretch past deadlines, and the
  // checker reports Property-3 violations.
  TrafficOptions options;
  options.base_seed = 1;
  options.num_deals = 150;
  options.num_chains = 4;
  options.block_capacity = 6;
  options.arrival = ArrivalProcess::kPoisson;
  options.mean_interarrival = 5.0;  // λ = 200 deals per kilotick
  return options;
}

AdmissionOptions StockController() {
  AdmissionOptions admission;
  admission.enabled = true;
  admission.max_chain_occupancy = 24;
  admission.retry_delay = 20;
  admission.max_retries = 3;
  return admission;
}

TEST(TrafficEngineTest, ExplicitFixedStaggerIsTheLegacySchedule) {
  // kFixedStagger + controller off is the legacy engine bit-for-bit: the
  // same golden fingerprint the pre-admission code produced (see
  // SingleShardReproducesPreRedesignFingerprints), via the same upfront
  // deployment path.
  TrafficOptions options;
  options.base_seed = 101;
  options.num_deals = 40;
  options.num_chains = 6;
  options.arrival = ArrivalProcess::kFixedStagger;  // explicit, not default
  options.mean_interarrival = 999.0;                // ignored in this mode
  TrafficReport report = RunTraffic(options);
  EXPECT_EQ(report.fingerprint, kGoldenFpMixedSeed101) << report.Summary();
  for (const TrafficDealRecord& rec : report.deals) {
    EXPECT_EQ(rec.arrival_at, rec.index * 20);  // admission_gap stagger
    EXPECT_EQ(rec.admitted_at, rec.arrival_at);
    EXPECT_FALSE(rec.shed);
    EXPECT_EQ(rec.admission_retries, 0u);
  }
}

TEST(TrafficEngineTest, OpenLoopPoissonConformsAtModerateLoad) {
  // Open-loop arrivals at a sustainable rate, unlimited capacity: every
  // deal commits, exactly as in the closed-loop stagger.
  TrafficOptions options;
  options.base_seed = 13;
  options.num_deals = 40;
  options.num_chains = 6;
  options.arrival = ArrivalProcess::kPoisson;
  options.mean_interarrival = 20.0;
  TrafficReport report = RunTraffic(options);

  EXPECT_EQ(report.committed, 40u) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  EXPECT_GT(report.offered_per_ktick, 0.0);
  // The schedule really is irregular (open loop, not a stagger).
  std::set<Tick> gaps;
  for (size_t d = 1; d < report.deals.size(); ++d) {
    EXPECT_GE(report.deals[d].arrival_at, report.deals[d - 1].arrival_at);
    gaps.insert(report.deals[d].arrival_at - report.deals[d - 1].arrival_at);
  }
  EXPECT_GT(gaps.size(), 5u);
}

TEST(TrafficEngineTest, OpenLoopReportIsBitIdenticalAcrossThreadCounts) {
  // The full open-loop + admission-control pipeline (arrival schedule,
  // admission events, delays, sheds) is part of the single-threaded
  // simulation; validation threads cannot move it.
  TrafficOptions options = CongestedOpenLoopOptions();
  options.admission = StockController();
  options.num_threads = 1;
  TrafficReport baseline = RunTraffic(options);
  EXPECT_GT(baseline.shed, 0u) << baseline.Summary();

  options.num_threads = 8;
  TrafficReport threaded = RunTraffic(options);
  EXPECT_EQ(threaded.fingerprint, baseline.fingerprint);
  ASSERT_EQ(threaded.deals.size(), baseline.deals.size());
  for (size_t d = 0; d < baseline.deals.size(); ++d) {
    EXPECT_EQ(threaded.deals[d].arrival_at, baseline.deals[d].arrival_at);
    EXPECT_EQ(threaded.deals[d].admitted_at, baseline.deals[d].admitted_at);
    EXPECT_EQ(threaded.deals[d].shed, baseline.deals[d].shed);
    EXPECT_EQ(threaded.deals[d].admission_retries,
              baseline.deals[d].admission_retries);
  }

  // And the same options replay the same report, sheds and all.
  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, baseline.fingerprint);
  EXPECT_EQ(replay.shed, baseline.shed);
  EXPECT_EQ(replay.Summary(), baseline.Summary());
}

TEST(TrafficEngineTest, AdmissionControllerBoundsLatencyUnderOverload) {
  TrafficOptions options = CongestedOpenLoopOptions();
  TrafficReport off = RunTraffic(options);

  options.admission = StockController();
  TrafficReport on = RunTraffic(options);

  // Without backpressure the overload shows up as stretched deadlines:
  // many Property-3 violations and a P99 far above the uncongested norm.
  EXPECT_GT(off.violations.size(), 20u) << off.Summary();
  EXPECT_EQ(off.shed, 0u);

  // The controller sheds load instead, keeps most admitted deals healthy,
  // and measurably bounds tail latency versus the uncontrolled run.
  EXPECT_GT(on.shed, 0u) << on.Summary();
  EXPECT_LT(on.latency_p99, off.latency_p99) << "on:\n"
                                             << on.Summary() << "off:\n"
                                             << off.Summary();
  EXPECT_LT(on.violations.size(), off.violations.size());
  EXPECT_GT(on.deals_per_ktick, off.deals_per_ktick);

  // Shed deals were never deployed; their fate is recorded, not lost.
  size_t shed_records = 0;
  for (const TrafficDealRecord& rec : on.deals) {
    if (rec.shed) {
      ++shed_records;
      EXPECT_FALSE(rec.started);
      EXPECT_EQ(rec.settle_time, 0u);
      EXPECT_TRUE(rec.violation.empty()) << rec.violation;
    }
  }
  EXPECT_EQ(shed_records, on.shed);
  EXPECT_GT(on.peak_occupancy_seen,
            options.admission.max_chain_occupancy);
}

TEST(TrafficEngineTest, DelayedAdmissionIsRecordedConsistently) {
  // Retry budget long enough to outlast the arrival burst: deals arriving
  // into a congested window park in delay-retry until the queues drain,
  // then admit — so the report records delayed-but-served deals, not just
  // sheds.
  TrafficOptions options = CongestedOpenLoopOptions();
  options.admission = StockController();
  options.admission.max_retries = 60;
  options.admission.retry_delay = 15;
  TrafficReport report = RunTraffic(options);

  EXPECT_GT(report.delayed_deals, 0u) << report.Summary();
  EXPECT_GT(report.admission_retries, 0u);
  size_t delayed = 0;
  for (const TrafficDealRecord& rec : report.deals) {
    if (rec.shed) continue;
    EXPECT_GE(rec.admitted_at, rec.arrival_at);
    EXPECT_EQ(rec.admission_wait, rec.admitted_at - rec.arrival_at);
    if (rec.admitted_at > rec.arrival_at) {
      ++delayed;
      EXPECT_GT(rec.admission_retries, 0u);
      // A delayed deal waited a whole number of retry quanta.
      EXPECT_EQ(rec.admission_wait % 15, 0u);
      if (rec.all_settled) {
        // Sojourn latency includes the admission wait.
        EXPECT_EQ(rec.latency, rec.settle_time - rec.arrival_at);
      }
    }
  }
  EXPECT_EQ(delayed, report.delayed_deals);
  EXPECT_EQ(report.max_admission_wait % 15, 0u);
  EXPECT_GT(report.max_admission_wait, 0u);
}

TEST(TrafficEngineTest, BacklogThresholdIgnoresTheEnginesOwnArrivalEvents) {
  // Every deal's arrival event sits in the same scheduler queue the
  // controller reads as its backlog signal. A threshold far below D on a
  // lightly loaded system must not shed anything: the controller subtracts
  // the engine's own not-yet-fired arrival/retry events, so only real work
  // (protocol phases, block production, observations) counts as backlog.
  // 900 pending arrival events at t=0 vs a threshold of 800: counting its
  // own events would shed the early deals outright on this idle system.
  // The 700-tick stagger exceeds a timelock deal's ~600-tick lifetime, so
  // deals never overlap and the real backlog at every arrival instant is
  // just a handful of lingering watchdog timers — far below the threshold.
  // (One in-flight deal alone holds hundreds of scheduled phase events,
  // which IS real backlog; zero overlap keeps that signal out of frame.)
  TrafficOptions options;
  options.base_seed = 3;
  options.num_deals = 900;
  options.num_chains = 8;
  options.arrival = ArrivalProcess::kFixedStagger;
  options.admission_gap = 700;
  options.protocol_mix = {Protocol::kTimelock};
  options.admission.enabled = true;
  options.admission.max_scheduler_backlog = 800;  // < num_deals
  options.admission.max_retries = 0;              // any false signal sheds
  TrafficReport report = RunTraffic(options);

  EXPECT_EQ(report.shed, 0u) << report.Summary();
  EXPECT_EQ(report.committed, 900u) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  // The controller really was consulted against a drained queue.
  EXPECT_LT(report.peak_backlog_seen, 100u) << report.Summary();
}

TEST(TrafficEngineTest, ControllerWithSlackThresholdsChangesNothing) {
  // A controller that never triggers admits every deal at its arrival
  // tick: same schedule and outcomes as no controller, even though the
  // deployment moved onto the scheduler. (Fingerprints differ by design —
  // the open-loop fold covers admission fate — so compare the substance.)
  TrafficOptions options;
  options.base_seed = 13;
  options.num_deals = 30;
  options.num_chains = 6;
  options.arrival = ArrivalProcess::kPoisson;
  options.mean_interarrival = 20.0;
  TrafficReport plain = RunTraffic(options);

  options.admission.enabled = true;  // thresholds 0 = never over
  TrafficReport controlled = RunTraffic(options);

  EXPECT_EQ(controlled.shed, 0u);
  EXPECT_EQ(controlled.delayed_deals, 0u);
  EXPECT_EQ(controlled.committed, plain.committed);
  EXPECT_EQ(controlled.violations.size(), plain.violations.size());
  ASSERT_EQ(controlled.deals.size(), plain.deals.size());
  for (size_t d = 0; d < plain.deals.size(); ++d) {
    EXPECT_EQ(controlled.deals[d].admitted_at, plain.deals[d].admitted_at);
    EXPECT_EQ(controlled.deals[d].committed, plain.deals[d].committed);
  }
}

TEST(TrafficEngineTest, ProtocolMixIsRespected) {
  TrafficOptions options = SmallOptions();
  options.protocol_mix = {Protocol::kCbc};
  TrafficReport report = RunTraffic(options);
  EXPECT_EQ(report.cbc_deals, options.num_deals);
  EXPECT_EQ(report.timelock_deals, 0u);
  EXPECT_EQ(report.committed, options.num_deals) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
}

}  // namespace
}  // namespace xdeal
