// util layer: Status/Result, hex codec, serialization, deterministic RNG.

#include <gtest/gtest.h>

#include "util/hex.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"

namespace xdeal {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::PermissionDenied("not the owner");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(s.ToString(), "PermissionDenied: not the owner");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    XDEAL_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok_result(42);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 42);
  EXPECT_EQ(ok_result.value_or(0), 42);

  Result<int> err(Status::TimedOut("late"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kTimedOut);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(HexTest, EncodeDecodeRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xcd, 0xef, 0xff};
  std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "0001abcdefff");
  auto back = HexDecode(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
}

TEST(HexTest, DecodeUppercase) {
  auto r = HexDecode("ABCD");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (Bytes{0xab, 0xcd}));
}

TEST(HexTest, DecodeRejectsMalformed) {
  EXPECT_FALSE(HexDecode("abc").ok());   // odd length
  EXPECT_FALSE(HexDecode("zz").ok());    // bad digit
}

TEST(SerializeTest, AllTypesRoundTrip) {
  ByteWriter w;
  w.U8(7).U16(300).U32(70000).U64(1ULL << 40).I64(-5).Bool(true)
      .Str("hello").Blob({1, 2, 3});
  Bytes buf = w.Take();

  ByteReader r(buf);
  EXPECT_EQ(r.U8().value(), 7);
  EXPECT_EQ(r.U16().value(), 300);
  EXPECT_EQ(r.U32().value(), 70000u);
  EXPECT_EQ(r.U64().value(), 1ULL << 40);
  EXPECT_EQ(r.I64().value(), -5);
  EXPECT_EQ(r.Bool().value(), true);
  EXPECT_EQ(r.Str().value(), "hello");
  EXPECT_EQ(r.Blob().value(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, TruncationDetected) {
  ByteWriter w;
  w.U64(123);
  Bytes buf = w.Take();
  buf.resize(4);
  ByteReader r(buf);
  EXPECT_FALSE(r.U64().ok());
}

TEST(SerializeTest, BlobLengthBeyondBufferRejected) {
  ByteWriter w;
  w.U32(1000);  // claims a 1000-byte blob follows
  Bytes buf = w.Take();
  ByteReader r(buf);
  EXPECT_FALSE(r.Blob().ok());
}

TEST(SerializeTest, CanonicalEncoding) {
  // Two writers with the same logical content produce identical bytes —
  // required for signature verification across parties.
  ByteWriter a, b;
  a.Str("deal-1").U64(99).Bool(false);
  b.Str("deal-1").U64(99).Bool(false);
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(RngTest, DeterministicStreams) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
  Rng c(124);
  EXPECT_NE(Rng(123).Next64(), c.Next64());
}

TEST(RngTest, BelowInRangeAndCoversValues) {
  Rng rng(5);
  bool seen[10] = {};
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Below(10);
    ASSERT_LT(v, 10u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(6);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.Between(3, 7);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 7u);
    lo_seen |= (v == 3);
    hi_seen |= (v == 7);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(8);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RngTest, ForkIndependence) {
  Rng parent(77);
  Rng child = parent.Fork();
  // Child stream differs from the continued parent stream.
  EXPECT_NE(child.Next64(), parent.Next64());
}

}  // namespace
}  // namespace xdeal
