// Watchtower (§5.3): an always-online relay neutralizes the DoS window that
// otherwise lets Bob keep both the coins and the tickets.

#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/timelock_run.h"
#include "core/watchtower.h"
#include "tests/scenario_util.h"

namespace xdeal {
namespace {

struct DosSetup {
  BrokerScenario scenario;
  std::unique_ptr<TimelockRun> run;
  std::unique_ptr<DealChecker> checker;
};

// Recreates the §5.3 attack from adversary_gallery: Alice and Carol are cut
// off right as the commit votes land, so they can neither forward Bob's vote
// to the ticket chain nor (being the same parties) have anyone do it for
// them — unless a watchtower exists.
DosSetup MakeDosRun(bool with_watchtower) {
  DosSetup setup;
  auto base = std::make_unique<SynchronousNetwork>(1, 10);
  auto dos = std::make_unique<TargetedDosNetwork>(std::move(base),
                                                  /*start=*/450,
                                                  /*end=*/3000);
  TargetedDosNetwork* dos_ptr = dos.get();
  setup.scenario = MakeBrokerScenario(7, std::move(dos));
  auto& s = setup.scenario;
  dos_ptr->AddTarget(Endpoint{s.alice.v});
  dos_ptr->AddTarget(Endpoint{s.carol.v});

  TimelockConfig config;
  config.delta = 80;
  setup.run = std::make_unique<TimelockRun>(&s.env->world(), s.spec, config);
  EXPECT_TRUE(setup.run->Start().ok());

  if (with_watchtower) {
    PartyId tower_op = s.env->AddParty("watchtower");
    static std::vector<std::unique_ptr<Watchtower>> towers;  // keep alive
    towers.push_back(std::make_unique<Watchtower>(
        &s.env->world(), s.spec, setup.run->deployment(), tower_op,
        std::vector<PartyId>{s.alice, s.carol}));
    towers.back()->Arm();
  }

  setup.checker = std::make_unique<DealChecker>(
      &s.env->world(), s.spec, setup.run->deployment().escrow_contracts);
  setup.checker->CaptureInitial();
  s.env->world().scheduler().Run();
  return setup;
}

TEST(WatchtowerTest, DosWindowWithoutTowerHurtsOfflineParties) {
  DosSetup setup = MakeDosRun(/*with_watchtower=*/false);
  auto& s = setup.scenario;
  TimelockResult result = setup.run->Collect();

  // Mixed outcome: coins released (Bob got paid), tickets refunded to Bob.
  EXPECT_EQ(result.released_contracts, 1u);
  EXPECT_EQ(result.refunded_contracts, 1u);
  auto* registry = s.env->RegistryOf(s.spec, s.tickets_asset);
  EXPECT_EQ(registry->OwnerOf(s.ticket1), Holder::Party(s.bob));

  PartyVerdict carol = setup.checker->Evaluate(s.carol);
  EXPECT_TRUE(carol.outgoing_transferred);
  EXPECT_FALSE(carol.all_incoming_received);
  EXPECT_FALSE(carol.property1);  // she IS worse off — but she deviated
                                  // (went offline past her deadlines)
}

TEST(WatchtowerTest, TowerNeutralizesTheAttack) {
  DosSetup setup = MakeDosRun(/*with_watchtower=*/true);
  auto& s = setup.scenario;
  TimelockResult result = setup.run->Collect();

  // The tower relayed Bob's vote to the ticket chain in time: both chains
  // commit and everyone is whole, despite the same DoS.
  EXPECT_EQ(result.released_contracts, 2u);
  EXPECT_EQ(result.refunded_contracts, 0u);
  EXPECT_TRUE(setup.checker->StrongLivenessHolds());
  auto* registry = s.env->RegistryOf(s.spec, s.tickets_asset);
  EXPECT_EQ(registry->OwnerOf(s.ticket1), Holder::Party(s.carol));
  for (PartyId p : s.spec.parties) {
    EXPECT_TRUE(setup.checker->Evaluate(p).property1);
  }
}

TEST(WatchtowerTest, TowerIsHarmlessInCleanRuns) {
  // No attack: the tower's relays are redundant (contracts dedupe votes)
  // and the deal commits normally.
  BrokerScenario s = MakeBrokerScenario(9);
  TimelockConfig config;
  config.delta = 80;
  TimelockRun run(&s.env->world(), s.spec, config);
  ASSERT_TRUE(run.Start().ok());
  PartyId tower_op = s.env->AddParty("watchtower");
  Watchtower tower(&s.env->world(), s.spec, run.deployment(), tower_op,
                   {s.alice, s.bob, s.carol});
  tower.Arm();
  DealChecker checker(&s.env->world(), s.spec,
                      run.deployment().escrow_contracts);
  checker.CaptureInitial();
  s.env->world().scheduler().Run();

  EXPECT_EQ(run.Collect().released_contracts, 2u);
  EXPECT_TRUE(checker.StrongLivenessHolds());
}

TEST(WatchtowerTest, TowerClaimsRefundsForOfflineDepositors) {
  // Everyone withholds votes AND nobody claims refunds (all offline after
  // escrow); the tower alone brings the assets home.
  BrokerScenario s = MakeBrokerScenario(10);
  TimelockConfig config;
  config.delta = 80;
  TimelockRun run(&s.env->world(), s.spec, config,
                  [](PartyId) -> std::unique_ptr<TimelockParty> {
                    struct Dead : TimelockParty {
                      void OnCommitPhase() override {}
                      void OnObservedReceipt(const Receipt&) override {}
                      void OnRefundWatch() override {}
                    };
                    return std::make_unique<Dead>();
                  });
  ASSERT_TRUE(run.Start().ok());
  PartyId tower_op = s.env->AddParty("watchtower");
  Watchtower tower(&s.env->world(), s.spec, run.deployment(), tower_op,
                   {s.bob, s.carol});
  tower.Arm();
  DealChecker checker(&s.env->world(), s.spec,
                      run.deployment().escrow_contracts);
  checker.CaptureInitial();
  s.env->world().scheduler().Run();

  TimelockResult result = run.Collect();
  EXPECT_EQ(result.refunded_contracts, 2u);
  EXPECT_TRUE(checker.Evaluate(s.bob).token_state_unchanged);
  EXPECT_TRUE(checker.Evaluate(s.carol).token_state_unchanged);
}

}  // namespace
}  // namespace xdeal
