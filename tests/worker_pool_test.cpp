// WorkerPool: the load-bearing substrate under both the scenario sweep and
// the traffic engine. Submit/Wait interleavings, ParallelFor with n >> and
// n << threads, the single-threaded inline path, and reuse after Wait.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "sim/worker_pool.h"

namespace xdeal {
namespace {

TEST(WorkerPoolTest, SingleThreadRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  // Inline mode: the task runs on the submitting thread, synchronously.
  std::thread::id task_thread;
  pool.Submit([&task_thread] { task_thread = std::this_thread::get_id(); });
  EXPECT_EQ(task_thread, std::this_thread::get_id());

  // ParallelFor degrades to a plain ordered loop.
  std::vector<size_t> order;
  pool.ParallelFor(5, [&order](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
}

TEST(WorkerPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  WorkerPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(WorkerPoolTest, WaitWithoutSubmitsReturnsImmediately) {
  WorkerPool pool(4);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(WorkerPoolTest, SubmitWaitInterleaving) {
  WorkerPool pool(4);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    // Mix quick tasks with slow ones so Wait really has to wait, and
    // interleave further Submits while earlier tasks are still running.
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&count, i] {
        if (i % 4 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        count.fetch_add(1);
      });
    }
    pool.Submit([&pool, &count] {
      // Submitting from inside a worker must not deadlock Wait().
      pool.Submit([&count] { count.fetch_add(1); });
    });
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 17);
  }
}

TEST(WorkerPoolTest, ReusableAfterWait) {
  WorkerPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(10, [&total](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10);
  // The pool stays serviceable: a second batch after a completed Wait.
  pool.ParallelFor(7, [&total](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 17);
  pool.Submit([&total] { total.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(total.load(), 18);
}

TEST(WorkerPoolTest, ParallelForManyMoreItemsThanThreads) {
  WorkerPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&hits](size_t i) { hits[i].fetch_add(1); });
  // Every index exactly once — no drops, no duplicates, despite dynamic
  // work-stealing off the shared cursor.
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPoolTest, ParallelForFewerItemsThanThreads) {
  WorkerPool pool(8);
  std::atomic<int> total{0};
  pool.ParallelFor(2, [&total](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 2);
  pool.ParallelFor(0, [&total](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 2);
}

TEST(WorkerPoolTest, ResultsLandInCallerOwnedSlots) {
  // The determinism idiom both engines rely on: workers write into disjoint
  // slots; the caller folds sequentially afterwards.
  WorkerPool pool(4);
  constexpr size_t kN = 512;
  std::vector<uint64_t> slots(kN, 0);
  pool.ParallelFor(kN, [&slots](size_t i) { slots[i] = i * i; });
  uint64_t sum = 0;
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(slots[i], i * i);
    sum += slots[i];
  }
  EXPECT_EQ(sum, (kN - 1) * kN * (2 * kN - 1) / 6);
}

}  // namespace
}  // namespace xdeal
