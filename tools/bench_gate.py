#!/usr/bin/env python3
"""Bench-trajectory regression gate for the BENCH_*.json artifacts.

The bench binaries (bench_traffic, bench_sweep, bench_explore) emit machine-readable
reports; this tool diffs a fresh set against the committed baseline so CI
holds the line on the performance trajectory instead of merely archiving
it.

Usage:
  # CI / local gate: fail on regressions against the committed baseline.
  python3 tools/bench_gate.py check --baseline BENCH_baseline.json \
      BENCH_traffic.json BENCH_sweep.json BENCH_explore.json

  # One-command re-baseline after an intentional perf/behaviour change:
  python3 tools/bench_gate.py rebaseline --out BENCH_baseline.json \
      BENCH_traffic.json BENCH_sweep.json BENCH_explore.json

Metric policy (classified by name, see classify()):

  exact          conformance counters and swept frontier/knee positions
                 (committed, violations, shed, delayed, knee rate, broker
                 knee capital, min safe delta, conformance_ok), every
                 explore_* DPOR counter (inequivalent orders, pruned runs,
                 violating orders — deterministic properties of the deal),
                 and the xshard_*/hopchain_* cross-shard counts and price
                 metrics (margins, curve points — the market clears the
                 same way every run). All simulated — any drift is a real
                 behaviour change and must be an intentional re-baseline.
  lower_better   simulated latencies and gas costs: fail when the fresh
                 value exceeds baseline * (1 + tolerance).
  higher_better  simulated throughput (deals/goodput per kilotick): fail
                 when the fresh value drops below baseline * (1 - tol).
  wall           wall-clock rates and times (wall_ms, *_per_sec, speedup).
                 Machine-dependent, so skipped by default; --include-wall
                 gates them with the looser --wall-tolerance (a committed
                 baseline from one host is only advisory on another).
  info           everything else: carried in the baseline for reference,
                 never gated.

The default tolerance is 0.15: CI fails on a >15% regression in any gated
throughput/latency metric. Simulated metrics are deterministic for a given
seed, so the gate cannot flap on a noisy runner — if it fires, the code
changed the trajectory.
"""

import argparse
import json
import sys

TOLERANCE = 0.15
WALL_TOLERANCE = 0.50


def classify(name):
    if "wall_ms" in name or name.endswith("_per_sec") or \
            name in ("speedup", "shard_speedup"):
        return "wall"
    # DPOR reduction counters (bench_explore): the number of inequivalent
    # orders, pruned re-executions, and violating orders of a fixed cell are
    # properties of the deal, not of a seed or a machine — any drift is a
    # semantic change to the scheduler, the independence relation, or a
    # protocol, and must be an intentional re-baseline.
    if name.startswith("explore_"):
        return "exact"
    # Cross-shard / hop-chain families (bench_traffic): cross-shard deal
    # counts, stale-proof rejections, and every price-chart metric (point
    # counts, min/max margins, the bucketed margin-vs-occupancy curve) are
    # deterministic simulated quantities — exact, like the knee positions.
    # Their latency/goodput/gas metrics fall through to the generic
    # tolerance rules below.
    if name.startswith(("xshard_", "hopchain_")) and \
            "latency" not in name and "goodput" not in name and \
            "gas" not in name:
        return "exact"
    # Epoch-service family (bench_traffic section 9 + --epoch_soak):
    # restore-vs-straight-through parity bits, per-epoch conformance
    # counters, restore counts, and snapshot sizes are all deterministic
    # simulated quantities — exact. Latency/gas metrics fall through to the
    # tolerance rules; wall-clock (checkpoint/restore cycle times) was
    # already classified above.
    if name.startswith("epoch_") and "latency" not in name and \
            "goodput" not in name and "gas" not in name:
        return "exact"
    if name == "conformance_ok" or name.endswith("committed") or \
            name.endswith("violations") or name.endswith("_shed") or \
            name.endswith("_delayed") or name.endswith("knee_rate") or \
            name.endswith("knee_capital") or \
            name.endswith("blocked_decisions") or \
            name.endswith("min_safe_delta"):
        return "exact"
    if "latency" in name or "gas" in name:
        return "lower_better"
    if name.endswith("per_ktick"):
        return "higher_better"
    return "info"


def metric_key(bench, metric):
    labels = metric.get("labels", {})
    return (bench, metric["name"], tuple(sorted(labels.items())))


def load_fresh(paths):
    metrics = {}
    for path in paths:
        with open(path) as f:
            report = json.load(f)
        bench = report.get("bench", path)
        for metric in report.get("metrics", []):
            metrics[metric_key(bench, metric)] = float(metric["value"])
    return metrics


def fmt_key(key):
    bench, name, labels = key
    label_str = ",".join(f"{k}={v}" for k, v in labels)
    return f"{bench}:{name}" + (f"[{label_str}]" if label_str else "")


def rebaseline(args):
    entries = []
    git_rev = "unknown"
    for path in args.files:
        with open(path) as f:
            report = json.load(f)
        git_rev = report.get("git_rev", git_rev)
        bench = report.get("bench", path)
        for metric in report.get("metrics", []):
            entries.append({
                "bench": bench,
                "name": metric["name"],
                "labels": metric.get("labels", {}),
                "unit": metric.get("unit", ""),
                "value": float(metric["value"]),
            })
    baseline = {
        "schema": 1,
        "comment": "Committed bench baseline. Regenerate with: "
                   "python3 tools/bench_gate.py rebaseline "
                   "--out BENCH_baseline.json BENCH_traffic.json "
                   "BENCH_sweep.json BENCH_explore.json",
        "generated_from_git_rev": git_rev,
        "metrics": entries,
    }
    with open(args.out, "w") as f:
        json.dump(baseline, f, indent=1)
        f.write("\n")
    gated = sum(1 for e in entries if classify(e["name"]) in
                ("exact", "lower_better", "higher_better"))
    print(f"wrote {args.out}: {len(entries)} metrics "
          f"({gated} gated, rest wall/info)")
    return 0


def check(args):
    with open(args.baseline) as f:
        baseline = json.load(f)
    fresh = load_fresh(args.files)

    failures = []
    checked = 0
    skipped_wall = 0
    for entry in baseline.get("metrics", []):
        name = entry["name"]
        cls = classify(name)
        if cls == "info":
            continue
        if cls == "wall" and not args.include_wall:
            skipped_wall += 1
            continue
        key = metric_key(entry["bench"], entry)
        base = float(entry["value"])
        if key not in fresh:
            failures.append((key, base, None, "missing from fresh run"))
            continue
        value = fresh[key]
        checked += 1
        if cls == "exact":
            if value != base:
                failures.append((key, base, value, "exact-match metric "
                                 "changed (intentional? re-baseline)"))
        elif cls == "lower_better":
            if value > base * (1.0 + args.tolerance) + 1e-9:
                failures.append((key, base, value,
                                 f"regressed >{args.tolerance:.0%} (higher "
                                 "is worse)"))
        elif cls == "higher_better":
            if value < base * (1.0 - args.tolerance) - 1e-9:
                failures.append((key, base, value,
                                 f"regressed >{args.tolerance:.0%} (lower "
                                 "is worse)"))
        elif cls == "wall":
            if value > base * (1.0 + args.wall_tolerance) + 1e-9 and \
                    "_per_sec" not in name and "speedup" not in name:
                failures.append((key, base, value, "wall-clock regression"))
            elif ("_per_sec" in name or "speedup" in name) and \
                    value < base * (1.0 - args.wall_tolerance) - 1e-9:
                failures.append((key, base, value, "wall-clock regression"))

    new = [k for k in fresh if k not in
           {metric_key(e["bench"], e) for e in baseline.get("metrics", [])}]

    print(f"bench gate: {checked} metrics checked against "
          f"{args.baseline} (tolerance {args.tolerance:.0%}, "
          f"{skipped_wall} wall-clock metrics skipped"
          f"{'' if args.include_wall else ' — use --include-wall to gate them'})")
    if new:
        print(f"  note: {len(new)} fresh metrics not in the baseline "
              f"(re-baseline to start tracking them), e.g. "
              f"{fmt_key(new[0])}")
    if failures:
        print(f"\nFAILED: {len(failures)} regression(s):")
        for key, base, value, why in failures:
            shown = "absent" if value is None else f"{value:g}"
            print(f"  {fmt_key(key)}: baseline {base:g} -> {shown}  ({why})")
        print("\nIf this change is intentional, re-baseline with:\n"
              "  python3 tools/bench_gate.py rebaseline --out "
              "BENCH_baseline.json " + " ".join(args.files))
        return 1
    print("OK: no regressions against the baseline")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="diff fresh reports vs baseline")
    p_check.add_argument("--baseline", required=True)
    p_check.add_argument("--tolerance", type=float, default=TOLERANCE)
    p_check.add_argument("--wall-tolerance", type=float,
                         default=WALL_TOLERANCE)
    p_check.add_argument("--include-wall", action="store_true",
                         help="also gate machine-dependent wall-clock "
                              "metrics")
    p_check.add_argument("files", nargs="+")
    p_check.set_defaults(func=check)

    p_re = sub.add_parser("rebaseline", help="write a new baseline")
    p_re.add_argument("--out", required=True)
    p_re.add_argument("files", nargs="+")
    p_re.set_defaults(func=rebaseline)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
