#!/usr/bin/env python3
"""Render a self-contained HTML trend page from BENCH_*.json artifacts.

Input: bench reports (the {"bench", "git_rev", "metrics": [...]} schema the
bench binaries write) and/or committed baselines (the {"schema": 1,
"metrics": [...]} schema bench_gate.py writes), in CHRONOLOGICAL order —
oldest first. Each file becomes one x-axis point; every metric family
becomes one inline-SVG chart with one line per label combination. No
external JS/CSS, so the single output file can be archived as a CI
artifact and opened anywhere.

Usage:
  # Nightly: baseline + the cached rolling history window of soak reports.
  python3 tools/bench_trend.py --out BENCH_trend.html \\
      BENCH_baseline.json bench-history/

  # Local: a directory of downloaded bench-reports artifacts.
  python3 tools/bench_trend.py --out trend.html artifacts/*/BENCH_*.json

A directory argument expands to its *.json files in sorted (filename)
order, so history windows named sortably — e.g. zero-padded run numbers —
chart chronologically without the caller globbing. --max-points N keeps
only the newest N points when the history outgrows the chart.

Only gated metric families (see tools/bench_gate.py classify()) are
charted by default; --all charts every family, including wall-clock.
"""

import argparse
import glob
import html
import json
import os
import sys

from bench_gate import classify

WIDTH, HEIGHT, PAD = 640, 220, 44
PALETTE = ["#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed",
           "#0891b2", "#be185d", "#4d7c0f", "#b45309", "#1e40af"]
MAX_SERIES = 12


def load_points(paths):
    """Returns [(label, {(bench, metric, labels): value})] per input file."""
    points = []
    for path in paths:
        with open(path) as f:
            report = json.load(f)
        if "schema" in report:  # a committed bench_gate baseline
            rev = report.get("generated_from_git_rev", "baseline")
            metrics = {}
            for entry in report.get("metrics", []):
                key = (entry["bench"], entry["name"],
                       tuple(sorted(entry.get("labels", {}).items())))
                metrics[key] = float(entry["value"])
        else:  # a raw bench report
            rev = report.get("git_rev", path)
            bench = report.get("bench", path)
            metrics = {}
            for metric in report.get("metrics", []):
                key = (bench, metric["name"],
                       tuple(sorted(metric.get("labels", {}).items())))
                metrics[key] = float(metric["value"])
        points.append((str(rev)[:12], metrics))
    return points


def svg_chart(title, series, x_labels):
    """One SVG line chart. series: {series_name: [value-or-None per x]}."""
    values = [v for line in series.values() for v in line if v is not None]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1.0
    n = max(2, len(x_labels))

    def x(i):
        return PAD + (WIDTH - 2 * PAD) * i / (n - 1)

    def y(v):
        return HEIGHT - PAD + (2 * PAD - HEIGHT) * (v - lo) / (hi - lo)

    parts = [f'<svg viewBox="0 0 {WIDTH} {HEIGHT}" class="chart" '
             f'role="img" aria-label="{html.escape(title)}">',
             f'<text x="{PAD}" y="16" class="title">'
             f'{html.escape(title)}</text>']
    # Axis frame + min/max gridline labels.
    parts.append(f'<line x1="{PAD}" y1="{HEIGHT - PAD}" x2="{WIDTH - PAD}" '
                 f'y2="{HEIGHT - PAD}" class="axis"/>')
    for v in (lo, hi):
        parts.append(f'<text x="{PAD - 6}" y="{y(v) + 4}" '
                     f'class="tick" text-anchor="end">{v:g}</text>')
    for i, label in enumerate(x_labels):
        parts.append(f'<text x="{x(i)}" y="{HEIGHT - PAD + 16}" '
                     f'class="tick" text-anchor="middle">'
                     f'{html.escape(label)}</text>')

    clipped = list(series.items())
    for si, (name, line) in enumerate(clipped[:MAX_SERIES]):
        color = PALETTE[si % len(PALETTE)]
        path = []
        for i, v in enumerate(line):
            if v is None:
                continue
            path.append(f"{'M' if not path else 'L'}{x(i):.1f},{y(v):.1f}")
            parts.append(f'<circle cx="{x(i):.1f}" cy="{y(v):.1f}" r="3" '
                         f'fill="{color}"><title>{html.escape(name)} = '
                         f'{v:g}</title></circle>')
        if path:
            parts.append(f'<path d="{" ".join(path)}" fill="none" '
                         f'stroke="{color}" stroke-width="1.5"/>')
        parts.append(f'<text x="{WIDTH - PAD + 4}" '
                     f'y="{30 + 14 * si}" class="legend" fill="{color}">'
                     f'{html.escape(name)}</text>')
    if len(clipped) > MAX_SERIES:
        parts.append(f'<text x="{WIDTH - PAD + 4}" '
                     f'y="{30 + 14 * MAX_SERIES}" class="legend">'
                     f'(+{len(clipped) - MAX_SERIES} more)</text>')
    parts.append("</svg>")
    return "".join(parts)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True, help="output HTML path")
    parser.add_argument("--all", action="store_true",
                        help="chart every metric family, incl. wall-clock")
    parser.add_argument("--max-points", type=int, default=0, metavar="N",
                        help="keep only the newest N points (0 = all)")
    parser.add_argument("files", nargs="+",
                        help="bench reports/baselines (or directories of "
                             "them), oldest first")
    args = parser.parse_args()

    paths = []
    for arg in args.files:
        if os.path.isdir(arg):
            paths.extend(sorted(glob.glob(os.path.join(arg, "*.json"))))
        else:
            paths.append(arg)
    if not paths:
        print("no reports found", file=sys.stderr)
        return 1

    points = load_points(paths)
    if args.max_points > 0:
        points = points[-args.max_points:]
    x_labels = [label for label, _ in points]

    # Group into one chart per (bench, metric name); one line per label set.
    families = {}
    for i, (_, metrics) in enumerate(points):
        for (bench, name, labels), value in metrics.items():
            if not args.all and classify(name) in ("wall", "info"):
                continue
            family = families.setdefault((bench, name), {})
            series_name = ",".join(f"{k}={v}" for k, v in labels) or name
            family.setdefault(series_name, [None] * len(points))[i] = value

    charts = []
    for (bench, name), series in sorted(families.items()):
        chart = svg_chart(f"{bench}: {name}", series, x_labels)
        if chart:
            charts.append(chart)

    page = f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>xdeal bench trend</title>
<style>
 body {{ font: 14px system-ui, sans-serif; margin: 24px; color: #111; }}
 .chart {{ width: {WIDTH}px; max-width: 100%; display: block;
           margin: 12px 0 28px; overflow: visible; }}
 .title {{ font-size: 13px; font-weight: 600; }}
 .tick, .legend {{ font-size: 10px; fill: #555; }}
 .axis {{ stroke: #bbb; }}
</style></head><body>
<h1>xdeal bench trend</h1>
<p>{len(points)} report(s), oldest → newest: {html.escape(" → ".join(x_labels))}.
Gated simulated metrics only{" (plus wall-clock/info)" if args.all else ""};
see docs/BENCH_SCHEMA.md for what each metric means.</p>
{"".join(charts)}
</body></html>
"""
    with open(args.out, "w") as f:
        f.write(page)
    print(f"wrote {args.out}: {len(charts)} charts over {len(points)} "
          f"report(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
