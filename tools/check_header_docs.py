#!/usr/bin/env python3
"""Doc-comment gate for public core headers.

Every public type (struct / class / enum) and every public function
declaration in the given headers must carry a doc comment: a `///` (or
`//`) line directly above it, or a trailing comment on the same line. CI
runs this over the core API headers so new public surface cannot land
undocumented:

  python3 tools/check_header_docs.py src/core/protocol_driver.h \\
      src/core/traffic_engine.h src/core/admission.h src/core/broker_pool.h

Deliberately pragmatic (regex, not a C++ parser). Skipped, by policy:
  - data members (only types and functions are gated),
  - constructors / destructors / `= default` / `= delete`,
  - `override` declarations (they inherit the base's doc),
  - trivial one-line inline accessors (declaration and `{ ... }` body on
    one line),
  - forward declarations (`class Foo;`),
  - continuation lines of a multi-line declaration,
  - annotation macros (`XDEAL_DETERMINISTIC`) / attributes on their own
    line between the doc comment and the declaration.

Exit status 1 lists every undocumented declaration as file:line.
"""

import re
import sys

TYPE_RE = re.compile(r"^\s*(template\s*<[^>]*>\s*)?"
                     r"(struct|class|enum\s+class|enum)\s+(\w+)")
# A function-ish line: optional qualifiers, a return type, a name, an
# opening paren. Conservative on purpose — misses exotic shapes rather
# than false-positive on expressions.
FUNC_RE = re.compile(r"^\s*(virtual\s+|static\s+|explicit\s+|inline\s+|"
                     r"constexpr\s+|friend\s+)*"
                     r"[\w:<>,&*~\[\]\s]+?[\s&*](\w+|operator..?)\s*\(")
CONTROL_KEYWORDS = ("if", "for", "while", "switch", "return", "sizeof",
                    "assert", "static_assert", "catch")


def is_comment(line):
    stripped = line.strip()
    return stripped.startswith("//") or stripped.startswith("*") or \
        stripped.startswith("/*")


def public_regions(lines):
    """Yields, per line index, whether that line is at public scope:
    namespace scope, a struct body, or a class body after `public:`.
    Plain blocks (multi-line inline function bodies) are NOT public scope —
    local declarations inside them are statements, not API surface."""
    # Stack of (kind, public?) per brace scope; namespace/global = public.
    stack = []
    public = []
    pending = None  # type keyword seen, waiting for its '{'
    for line in lines:
        code = re.sub(r"//.*", "", line)
        m = TYPE_RE.match(code)
        if m and not code.rstrip().endswith(";"):
            pending = "struct" if m.group(2) != "class" else "class"
        is_namespace = re.match(r"^\s*(inline\s+)?namespace\b", code)
        if re.match(r"^\s*(public|protected|private)\s*:", code):
            if stack and stack[-1][0] == "class-like":
                stack[-1] = ("class-like",
                             code.strip().startswith("public"))
        public.append(not stack or all(p for _, p in stack))
        for ch in code:
            if ch == "{":
                if pending is not None:
                    stack.append(("class-like", pending == "struct"))
                    pending = None
                elif is_namespace:
                    stack.append(("namespace",
                                  stack[-1][1] if stack else True))
                    is_namespace = None  # only the first '{' on the line
                else:
                    stack.append(("block", False))
            elif ch == "}":
                if stack:
                    stack.pop()
    return public


def check_file(path):
    with open(path) as f:
        lines = f.read().splitlines()
    public = public_regions(lines)
    failures = []

    for i, line in enumerate(lines):
        if not public[i]:
            continue
        code = re.sub(r"//.*", "", line).rstrip()
        if not code.strip() or is_comment(line):
            continue

        # Continuation of a multi-line declaration? Skip.
        prev_code = ""
        for j in range(i - 1, -1, -1):
            candidate = re.sub(r"//.*", "", lines[j]).rstrip()
            if candidate.strip():
                prev_code = candidate
                break
        if prev_code.endswith((",", "(", "&&", "||", "+", "=", ":")):
            continue
        if code.strip().startswith(":"):  # constructor initializer list
            continue

        # Join a multi-line declaration up to its terminator so qualifiers
        # on later lines (`override`, `= 0`, `= delete`) are visible.
        decl = code
        k = i
        while not decl.rstrip().endswith((";", "{", "}")) and \
                k + 1 < len(lines) and k - i < 6:
            k += 1
            decl += " " + re.sub(r"//.*", "", lines[k]).strip()

        is_type = False
        m = TYPE_RE.match(code)
        if m and not code.endswith(";"):  # forward declarations are free
            is_type = True
        name = m.group(3) if m else None

        is_func = False
        if not is_type:
            fm = FUNC_RE.match(code)
            if fm and not any(
                    re.match(rf"^\s*{kw}\b", code.strip())
                    for kw in CONTROL_KEYWORDS):
                fname = fm.group(2)
                is_func = True
                if "override" in decl or "= default" in decl or \
                        "= delete" in decl:
                    is_func = False       # doc inherited / generated
                elif fname.startswith("~"):
                    is_func = False       # destructor
                elif re.search(r"\{.*\}", code) or code.endswith("}"):
                    is_func = False       # one-line inline accessor
                elif re.match(r"^\s*" + re.escape(fname) + r"\s*\(", code.strip()):
                    is_func = False       # constructor (name == type name)
                name = fname

        if not (is_type or is_func):
            continue

        # Documented? Trailing comment, or the previous non-blank line is
        # a comment.
        if "//" in line:
            continue
        documented = False
        for j in range(i - 1, -1, -1):
            if not lines[j].strip():
                break
            # Annotation macros / attributes on their own line sit between
            # the doc comment and the declaration — look through them.
            if re.match(r"^\s*(XDEAL_\w+|\[\[.*\]\])\s*$", lines[j]):
                continue
            if is_comment(lines[j]):
                documented = True
            break
        if not documented:
            failures.append((i + 1, name, line.strip()))
    return failures


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    total = 0
    for path in sys.argv[1:]:
        for lineno, name, text in check_file(path):
            print(f"{path}:{lineno}: undocumented public declaration "
                  f"'{name}': {text}")
            total += 1
    if total:
        print(f"\nFAILED: {total} undocumented public declaration(s). "
              "Add a /// summary line directly above each.")
        return 1
    print(f"OK: all public declarations documented in "
          f"{len(sys.argv) - 1} header(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
