#!/usr/bin/env python3
"""det-lint: a determinism-taint static analyzer for the xdeal sources.

The repo's central invariant — a run is a pure function of (seed, config),
bit-identical across thread counts, platforms, and optimization levels — is
enforced dynamically by the 1-vs-8-thread fingerprint tests. det-lint
enforces it statically: nothing reachable from a declared deterministic
root may touch a nondeterminism source without an audited suppression.

Mechanics (src/util/det.h defines the in-source contract):

  1. Parse every translation unit (``*.cc``) and header under the given
     source roots; ``--compdb`` may point at a ``compile_commands.json``
     (or its directory) to enumerate TUs the way the other lint jobs do.
  2. Build the call graph: function definitions are resolved by qualified
     name where possible and conservatively by simple name otherwise
     (over-approximation is safe for a taint gate — a spurious edge can
     only surface a finding early, never hide one).
  3. Detect nondeterminism *sources* inside each function body (taxonomy
     below), and *roots*: declarations marked ``XDEAL_DETERMINISTIC``.
  4. Fail (exit 1) if any source is reachable from a root and not covered
     by an ``XDEAL_DET_OK("reason")`` suppression in the same function, or
     if any suppression has an empty reason. ``--json`` writes the full
     machine-readable report, including suppressed findings with their
     audit reasons (the nightly job archives this).

Source taxonomy (class ids used in findings and fixtures):

  unordered-iter        iteration (range-for / .begin) over
                        std::unordered_map / std::unordered_set — order is
                        a function of hash seeding, bucket count, and
                        insertion history, none of which are contractual.
  unstable-hash         std::hash<T> for non-integral T (strings, pointers)
                        — value is implementation-defined, differs across
                        stdlibs and builds.
  pointer-order         ordering on pointer values: iterating a std::set /
                        std::map keyed by a pointer type, or a comparator
                        lambda comparing two pointer parameters — addresses
                        depend on the allocator and ASLR.
  libm-call             transcendental libm calls (log/exp/pow/sin/...) —
                        not correctly-rounded, results differ across libm
                        versions and platforms. Exactly-specified IEEE-754
                        operations (sqrt, fabs, frexp, ldexp, floor, ...)
                        are allowed; this is what keeps the libm-free
                        -ln(u) in admission.cc legal.
  ambient-env           wall clocks, ambient RNG, environment reads:
                        time/clock/gettimeofday, std::chrono::*_clock::now,
                        rand/srand/random_device, getenv.
  parallel-float-accum  += accumulation into a float/double local in a
                        function that also issues parallel work
                        (WorkerPool::ParallelFor / Submit) — reduction
                        order becomes schedule-dependent.
  endian-memcpy         memcpy/__builtin_memcpy between a scalar's address
                        and a byte buffer (``&x`` with ``sizeof``) — bakes
                        host endianness into serialized bytes.

The analyzer is deliberately self-contained (stdlib only), in the same
spirit as check_header_docs.py: a tokenizer plus a pragmatic scope tracker,
not a full C++ front end. When the clang Python bindings are installed
(CI's det-lint job attempts ``python3-clang``), ``--frontend=clang`` runs a
libclang cross-check pass that re-verifies root annotations from the real
AST; the token frontend remains the gate so results never depend on which
environment ran the tool.

Usage:
  python3 tools/det_lint.py [--src src] [--compdb build-lint] \
      [--json report.json] [--all] [-v]
"""

import argparse
import json
import os
import re
import sys
from collections import deque

# --------------------------------------------------------------------------
# Source taxonomy tables
# --------------------------------------------------------------------------

# Transcendental libm functions: results are implementation-dependent (libm
# is not required to be correctly rounded). Exactly-specified IEEE-754
# operations are deliberately absent: sqrt, fabs, frexp, ldexp, copysign,
# floor, ceil, trunc, round, fmod, nextafter, fma.
LIBM_CALLS = {
    "log", "log2", "log10", "log1p", "exp", "exp2", "expm1", "pow",
    "sin", "cos", "tan", "asin", "acos", "atan", "atan2",
    "sinh", "cosh", "tanh", "asinh", "acosh", "atanh",
    "erf", "erfc", "tgamma", "lgamma", "cbrt", "hypot",
}

# Ambient environment: wall clocks, process RNG, environment variables.
AMBIENT_CALLS = {
    "time", "clock", "gettimeofday", "clock_gettime", "localtime", "gmtime",
    "rand", "srand", "random", "srandom", "rand_r", "drand48", "getenv",
}
AMBIENT_TYPES = {"random_device"}
CLOCK_NAMES = {"steady_clock", "system_clock", "high_resolution_clock"}

# Integral-ish types whose std::hash is the identity-style stable hash on
# every implementation we target; anything else (strings, pointers, floats)
# is implementation-defined.
STABLE_HASH_TYPES = {
    "bool", "char", "short", "int", "long", "unsigned", "signed",
    "int8_t", "int16_t", "int32_t", "int64_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "size_t", "ssize_t", "ptrdiff_t", "uintptr_t", "intptr_t",
    "Tick",  # xdeal tick type: uint64_t
}

CPP_KEYWORDS = {
    "alignas", "alignof", "asm", "auto", "bool", "break", "case", "catch",
    "char", "class", "const", "constexpr", "const_cast", "continue",
    "decltype", "default", "delete", "do", "double", "dynamic_cast", "else",
    "enum", "explicit", "extern", "false", "float", "for", "friend", "goto",
    "if", "inline", "int", "long", "mutable", "namespace", "new", "noexcept",
    "nullptr", "operator", "private", "protected", "public", "register",
    "reinterpret_cast", "return", "short", "signed", "sizeof", "static",
    "static_assert", "static_cast", "struct", "switch", "template", "this",
    "throw", "true", "try", "typedef", "typeid", "typename", "union",
    "unsigned", "using", "virtual", "void", "volatile", "while",
    "final", "override",
}

ANNOTATION = "XDEAL_DETERMINISTIC"
SUPPRESSION = "XDEAL_DET_OK"

PARALLEL_CALLS = {"ParallelFor", "Submit"}

# --------------------------------------------------------------------------
# Lexing
# --------------------------------------------------------------------------

TOKEN_RE = re.compile(r"::|->|[A-Za-z_]\w*|\d[\w.]*|[^\sA-Za-z_0-9]")


class Token:
    __slots__ = ("text", "line", "kind")

    def __init__(self, text, line):
        self.text = text
        self.line = line
        c = text[0]
        if c.isalpha() or c == "_":
            self.kind = "ident"
        elif c.isdigit():
            self.kind = "num"
        else:
            self.kind = "punct"

    def __repr__(self):
        return f"{self.text}@{self.line}"


def strip_to_code(text):
    """Removes comments, string/char literals, and preprocessor lines while
    preserving line numbers. String literals become empty literals so token
    positions stay sane."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                break
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j == -1:
                break
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                elif text[j] == quote:
                    break
                else:
                    j += 1
            out.append(quote + quote)
            out.append("\n" * text.count("\n", i, min(j + 1, n)))
            i = j + 1
        else:
            out.append(c)
            i += 1
    code = "".join(out)
    # Drop preprocessor directives (with continuations), keeping newlines.
    lines = code.split("\n")
    cleaned = []
    in_pp = False
    for line in lines:
        stripped = line.lstrip()
        if in_pp or stripped.startswith("#"):
            in_pp = stripped.endswith("\\") or (in_pp and line.rstrip().endswith("\\"))
            cleaned.append("")
        else:
            in_pp = False
            cleaned.append(line)
    return "\n".join(cleaned)


def tokenize(code):
    tokens = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(code):
        line += code.count("\n", pos, m.start())
        pos = m.start()
        tokens.append(Token(m.group(0), line))
    return tokens


# --------------------------------------------------------------------------
# Data model
# --------------------------------------------------------------------------


class Finding:
    def __init__(self, klass, file, line, func, detail):
        self.klass = klass
        self.file = file
        self.line = line
        self.func = func  # FunctionDef
        self.detail = detail
        self.suppressed_by = None  # Suppression or None

    def to_json(self, path=None):
        d = {
            "class": self.klass,
            "file": self.file,
            "line": self.line,
            "function": self.func.qual_name if self.func else None,
            "detail": self.detail,
        }
        if self.suppressed_by is not None:
            d["suppressed"] = True
            d["reason"] = self.suppressed_by.reason
            d["suppression_line"] = self.suppressed_by.line
        if path:
            d["path"] = path
        return d


class Suppression:
    def __init__(self, file, line, reason):
        self.file = file
        self.line = line
        self.reason = reason
        self.used = False


class FunctionDef:
    def __init__(self, qual_name, simple_name, class_name, file, line,
                 end_line):
        self.qual_name = qual_name
        self.simple_name = simple_name
        self.class_name = class_name  # innermost enclosing class, or None
        self.file = file
        self.line = line
        self.end_line = end_line
        self.calls = []  # (simple_name, qualifier-or-None)
        self.findings = []
        self.suppressions = []
        self.is_root = False

    def __repr__(self):
        return self.qual_name


class Root:
    def __init__(self, simple_name, class_name, file, line):
        self.simple_name = simple_name
        self.class_name = class_name
        self.file = file
        self.line = line


# --------------------------------------------------------------------------
# File analysis
# --------------------------------------------------------------------------


def strip_comments(text):
    """Removes // and /* */ comments, preserving newlines and string
    literals (the suppression extractor needs the reason strings that
    strip_to_code throws away)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                break
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j == -1:
                break
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                elif text[j] == quote:
                    break
                else:
                    j += 1
            out.append(text[i:j + 1])
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def extract_suppressions(text, path):
    """Finds XDEAL_DET_OK("reason") in comment-stripped (but not
    string-stripped) text — the reason lives in a string literal, and
    occurrences inside comments (e.g. det.h's own documentation) must not
    count. Adjacent literal concatenation is honored."""
    text = strip_comments(text)
    sups = []
    for m in re.finditer(SUPPRESSION + r"\s*\(", text):
        # Skip the macro's own #define.
        line_start = text.rfind("\n", 0, m.start()) + 1
        if text[line_start:m.start()].lstrip().startswith("#define"):
            continue
        depth = 1
        i = m.end()
        reason_parts = []
        while i < len(text) and depth > 0:
            c = text[i]
            if c == '"':
                j = i + 1
                while j < len(text):
                    if text[j] == "\\":
                        j += 2
                        continue
                    if text[j] == '"':
                        break
                    j += 1
                reason_parts.append(text[i + 1:j])
                i = j + 1
                continue
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            i += 1
        line = text.count("\n", 0, m.start()) + 1
        sups.append(Suppression(path, line, "".join(reason_parts)))
    return sups


def parse_angle(tokens, i):
    """tokens[i] == '<'. Returns (inner tokens, index after matching '>')."""
    depth = 0
    inner = []
    n = len(tokens)
    j = i
    while j < n:
        t = tokens[j].text
        if t == "<":
            depth += 1
            if depth > 1:
                inner.append(tokens[j])
        elif t == ">":
            depth -= 1
            if depth == 0:
                return inner, j + 1
            inner.append(tokens[j])
        else:
            inner.append(tokens[j])
        j += 1
        if j - i > 200:  # malformed / not a template — bail
            break
    return inner, i + 1


def first_template_arg(inner):
    """Splits template-argument tokens at top-level commas; returns the
    first argument's tokens."""
    depth = 0
    arg = []
    for t in inner:
        if t.text in "<([":
            depth += 1
        elif t.text in ">)]":
            depth -= 1
        elif t.text == "," and depth == 0:
            break
        arg.append(t)
    return arg


class ContainerRegistry:
    """Names of variables/members declared with order-relevant container
    types, collected across all files. Name-based and unqualified — a
    conservative over-approximation."""

    def __init__(self):
        self.unordered = {}  # name -> (file, line)
        self.pointer_keyed = {}  # name -> (file, line)

    def collect(self, tokens):
        n = len(tokens)
        i = 0
        while i < n:
            t = tokens[i]
            if t.kind == "ident" and t.text in (
                    "unordered_map", "unordered_set", "unordered_multimap",
                    "unordered_multiset", "map", "set", "multimap",
                    "multiset"):
                unordered = t.text.startswith("unordered")
                if i + 1 < n and tokens[i + 1].text == "<":
                    inner, after = parse_angle(tokens, i + 1)
                    key = first_template_arg(inner)
                    ptr_key = any(x.text == "*" for x in key)
                    # Declared name: the identifier right after the closing
                    # '>' (possibly after '&'/'*' — then it's a ref/ptr to
                    # the container, still iterable).
                    j = after
                    while j < n and tokens[j].text in ("&", "*", "const"):
                        j += 1
                    if j < n and tokens[j].kind == "ident" and \
                            tokens[j].text not in CPP_KEYWORDS:
                        nxt = tokens[j + 1].text if j + 1 < n else ""
                        if nxt != "(":  # a function returning the container
                            name = tokens[j].text
                            if unordered:
                                self.unordered[name] = (t.line,)
                            elif ptr_key:
                                self.pointer_keyed[name] = (t.line,)
                    i = after
                    continue
            i += 1


def find_matching(tokens, i, open_t, close_t):
    """tokens[i] == open_t; returns index of the matching close_t."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n - 1


class FileParser:
    """Finds function definitions (with qualified names from the enclosing
    namespace/class scopes) and records everything between their braces for
    the body analyzer."""

    def __init__(self, path, tokens):
        self.path = path
        self.tokens = tokens
        self.functions = []

    def parse(self):
        tokens = self.tokens
        n = len(tokens)
        scope = []  # (kind, name) kind in {namespace, class, block}
        pending = None  # (kind, name) waiting for its '{'
        i = 0
        while i < n:
            t = tokens[i]
            text = t.text
            if text == "namespace" and t.kind == "ident":
                name = ""
                if i + 1 < n and tokens[i + 1].kind == "ident":
                    name = tokens[i + 1].text
                pending = ("namespace", name)
                i += 1
            elif text in ("class", "struct") and t.kind == "ident":
                # 'enum class' handled via the 'enum' branch below.
                name = None
                j = i + 1
                while j < n and tokens[j].text in ("alignas", "(", ")"):
                    j += 1
                if j < n and tokens[j].kind == "ident":
                    name = tokens[j].text
                # Definition only if '{' appears before ';' at this level.
                k = j
                depth = 0
                is_def = False
                while k < n and k - j < 400:
                    tk = tokens[k].text
                    if tk == "<":
                        depth += 1
                    elif tk == ">":
                        depth -= 1
                    elif depth == 0 and tk == "{":
                        is_def = True
                        break
                    elif depth == 0 and (tk == ";" or tk == "("):
                        break
                    k += 1
                if is_def and name:
                    pending = ("class", name)
                i += 1
            elif text == "enum":
                # Skip the whole enum body so enumerators never look like
                # scopes or calls.
                j = i + 1
                while j < n and tokens[j].text not in ("{", ";"):
                    j += 1
                if j < n and tokens[j].text == "{":
                    j = find_matching(tokens, j, "{", "}")
                i = j + 1
                pending = None
            elif text == "{":
                scope.append(pending if pending else ("block", ""))
                pending = None
                i += 1
            elif text == "}":
                if scope:
                    scope.pop()
                i += 1
            elif text == "operator" and self._at_decl_scope(scope):
                # operator definitions: operator==, operator*, operator(),
                # operator bool, ... — collect the spelling up to the
                # parameter list's '('.
                qual = preceding_qualifier(tokens, i)
                j = i + 1
                name_parts = []
                if j + 1 < n and tokens[j].text == "(" and \
                        tokens[j + 1].text == ")":
                    name_parts = ["()"]
                    j += 2
                else:
                    while j < n and j - i <= 6 and tokens[j].text != "(":
                        name_parts.append(tokens[j].text)
                        j += 1
                fn_end = None
                if j < n and tokens[j].text == "(":
                    fn_end = self._try_function(
                        j, scope, forced_name="operator" + "".join(name_parts),
                        forced_qual=qual)
                i = (fn_end + 1) if fn_end is not None else (i + 1)
            elif text == "(" and self._at_decl_scope(scope):
                fn_end = self._try_function(i, scope)
                if fn_end is not None:
                    i = fn_end + 1
                else:
                    i = find_matching(tokens, i, "(", ")") + 1
            else:
                i += 1
        return self.functions

    @staticmethod
    def _at_decl_scope(scope):
        return all(kind != "block" for kind, _ in scope)

    def _try_function(self, open_paren, scope, forced_name=None,
                      forced_qual=None):
        """tokens[open_paren] == '(' at namespace/class scope. If this is a
        function definition, records it and returns the index of its closing
        body brace; otherwise returns None."""
        tokens = self.tokens
        n = len(tokens)
        close = find_matching(tokens, open_paren, "(", ")")
        # --- name (and inline qualifier) backwards from the paren ---
        if forced_name is not None:
            simple = forced_name
            qual_parts = list(forced_qual or [])
        else:
            k = open_paren - 1
            if k < 0 or tokens[k].kind != "ident" or \
                    tokens[k].text in CPP_KEYWORDS:
                return None
            simple = tokens[k].text
            qual_parts = []
            k -= 1
            while k - 1 >= 0 and tokens[k].text == "::" and \
                    tokens[k - 1].kind == "ident":
                qual_parts.insert(0, tokens[k - 1].text)
                k -= 2
                # Skip a template argument list on the qualifier (rare).
        # --- forward over const/noexcept/ref-qualifiers/init-list to '{' ---
        j = close + 1
        seen_colon = False
        while j < n:
            tj = tokens[j].text
            if tj in (";", "=", ")"):  # declaration / `= default` / expr
                return None
            if tj == "{":
                if seen_colon:
                    # Member brace-init if directly preceded by an ident.
                    if tokens[j - 1].kind == "ident":
                        j = find_matching(tokens, j, "{", "}") + 1
                        continue
                break
            if tj == ":":
                seen_colon = True
            if tj == "(":
                j = find_matching(tokens, j, "(", ")")
            j += 1
            if j - close > 300:
                return None
        if j >= n:
            return None
        body_open = j
        body_close = find_matching(tokens, body_open, "{", "}")

        class_name = None
        parts = []
        for kind, name in scope:
            if name:
                parts.append(name)
            if kind == "class":
                class_name = name
        parts.extend(qual_parts)
        if qual_parts:
            class_name = qual_parts[-1]
        qual = "::".join(parts + [simple])
        fn = FunctionDef(qual, simple, class_name, self.path,
                         tokens[open_paren].line, tokens[body_close].line)
        fn.body_range = (body_open, body_close)
        self.functions.append(fn)
        return body_close


# --------------------------------------------------------------------------
# Body analysis: calls + source findings
# --------------------------------------------------------------------------


def preceding_qualifier(tokens, i):
    """For tokens[i] an ident: collects `A::B::` qualifier ending at i."""
    parts = []
    k = i - 1
    while k - 1 >= 0 and tokens[k].text == "::" and \
            tokens[k - 1].kind == "ident":
        parts.insert(0, tokens[k - 1].text)
        k -= 2
    return parts


def top_level_args(tokens, open_paren, close_paren):
    """Splits call-argument tokens between parens at top-level commas."""
    args = []
    cur = []
    depth = 0
    for t in tokens[open_paren + 1:close_paren]:
        if t.text in "([{":
            depth += 1
        elif t.text in ")]}":
            depth -= 1
        if t.text == "," and depth == 0:
            args.append(cur)
            cur = []
        else:
            cur.append(t)
    if cur:
        args.append(cur)
    return args


def analyze_body(fn, tokens, registry):
    """Fills fn.calls and fn.findings from its body token range."""
    lo, hi = fn.body_range
    body = tokens[lo:hi + 1]
    n = len(body)

    float_locals = set()
    has_parallel_call = False
    accum_hits = []  # (name, line)

    i = 0
    while i < n:
        t = body[i]
        text = t.text

        # ---- local float/double declarations ----
        if text in ("double", "float") and t.kind == "ident":
            j = i + 1
            while j < n and body[j].text in ("&", "*", "const"):
                j += 1
            if j < n and body[j].kind == "ident" and \
                    body[j].text not in CPP_KEYWORDS:
                if j + 1 < n and body[j + 1].text != "(":
                    float_locals.add(body[j].text)

        # ---- range-for over a registered container ----
        if text == "for" and i + 1 < n and body[i + 1].text == "(":
            close = find_matching(body, i + 1, "(", ")")
            colon = None
            depth = 0
            for k in range(i + 2, close):
                if body[k].text in "([":
                    depth += 1
                elif body[k].text in ")]":
                    depth -= 1
                elif body[k].text == ":" and depth == 0:
                    colon = k
                    break
            if colon is not None:
                expr = body[colon + 1:close]
                self_names = {fn.simple_name}
                for e in expr:
                    if e.kind != "ident" or e.text in self_names:
                        continue
                    if e.text in registry.unordered:
                        fn.findings.append(Finding(
                            "unordered-iter", fn.file, e.line, fn,
                            f"range-for over unordered container "
                            f"'{e.text}'"))
                    elif e.text in registry.pointer_keyed:
                        fn.findings.append(Finding(
                            "pointer-order", fn.file, e.line, fn,
                            f"range-for over pointer-keyed ordered "
                            f"container '{e.text}'"))

        # ---- .begin()/.rbegin()/.cbegin() on a registered container ----
        if text in ("begin", "rbegin", "cbegin", "crbegin") and i >= 2 and \
                body[i - 1].text in (".", "->") and \
                body[i - 2].kind == "ident":
            base = body[i - 2].text
            if base in registry.unordered:
                fn.findings.append(Finding(
                    "unordered-iter", fn.file, t.line, fn,
                    f"iterator over unordered container '{base}'"))
            elif base in registry.pointer_keyed:
                fn.findings.append(Finding(
                    "pointer-order", fn.file, t.line, fn,
                    f"iterator over pointer-keyed container '{base}'"))

        # ---- std::hash<T> on a non-integral T ----
        if text == "hash" and i + 1 < n and body[i + 1].text == "<":
            inner, _after = parse_angle(body, i + 1)
            arg = first_template_arg(inner)
            idents = [x.text for x in arg if x.kind == "ident"]
            is_ptr = any(x.text == "*" for x in arg)
            stable = (not is_ptr and idents and
                      all(x in STABLE_HASH_TYPES for x in idents))
            if arg and not stable:
                klass = "pointer-order" if is_ptr else "unstable-hash"
                fn.findings.append(Finding(
                    klass, fn.file, t.line, fn,
                    "std::hash<" + " ".join(x.text for x in arg) + ">"))

        # ---- pointer comparator lambda: [..](T* a, T* b) { ... a < b } ----
        if text == "]" and i + 1 < n and body[i + 1].text == "(":
            close = find_matching(body, i + 1, "(", ")")
            params = top_level_args(body, i + 1, close)
            if len(params) == 2 and \
                    all(any(x.text == "*" for x in p) for p in params):
                names = []
                for p in params:
                    ids = [x.text for x in p if x.kind == "ident" and
                           x.text not in CPP_KEYWORDS]
                    names.append(ids[-1] if ids else None)
                bo = close + 1
                while bo < n and body[bo].text != "{":
                    bo += 1
                if bo < n and all(names):
                    bc = find_matching(body, bo, "{", "}")
                    for k in range(bo, bc):
                        if body[k].text in ("<", ">") and \
                                body[k - 1].text in names and \
                                k + 1 <= bc and body[k + 1].text in names:
                            fn.findings.append(Finding(
                                "pointer-order", fn.file, body[k].line, fn,
                                f"comparator orders pointer values "
                                f"'{body[k - 1].text} {body[k].text} "
                                f"{body[k + 1].text}'"))
                            break

        # ---- calls ----
        if t.kind == "ident" and text not in CPP_KEYWORDS and \
                i + 1 < n and body[i + 1].text == "(":
            qual = preceding_qualifier(body, i)
            callee = text

            # Variable declaration with ctor args: `Type name(args)` —
            # treat as a call to Type's constructor.
            prev = body[i - 1 - 2 * len(qual)] if i - 1 - 2 * len(qual) >= 0 \
                else None
            if not qual and prev is not None and prev.kind == "ident" and \
                    prev.text not in CPP_KEYWORDS:
                callee = prev.text
                if prev.text in AMBIENT_TYPES:
                    fn.findings.append(Finding(
                        "ambient-env", fn.file, t.line, fn,
                        f"'{prev.text}' instantiated"))

            if callee in LIBM_CALLS and (not qual or qual == ["std"]):
                fn.findings.append(Finding(
                    "libm-call", fn.file, t.line, fn,
                    f"call to '{callee}' (libm, not correctly rounded)"))
            elif callee in AMBIENT_CALLS and (not qual or qual == ["std"]):
                fn.findings.append(Finding(
                    "ambient-env", fn.file, t.line, fn,
                    f"call to '{callee}'"))
            elif callee == "now" and qual and qual[-1] in CLOCK_NAMES:
                fn.findings.append(Finding(
                    "ambient-env", fn.file, t.line, fn,
                    f"call to '{'::'.join(qual)}::now'"))
            elif callee in ("memcpy", "__builtin_memcpy"):
                close = find_matching(body, i + 1, "(", ")")
                args = top_level_args(body, i + 1, close)
                if len(args) == 3:
                    amp = (args[0] and args[0][0].text == "&") or \
                          (args[1] and args[1][0].text == "&")
                    has_sizeof = any(x.text == "sizeof" for x in args[2])
                    if amp and has_sizeof:
                        fn.findings.append(Finding(
                            "endian-memcpy", fn.file, t.line, fn,
                            "memcpy between a scalar's bytes and a buffer "
                            "(host-endian serialization)"))
            else:
                if callee in PARALLEL_CALLS:
                    has_parallel_call = True
                fn.calls.append((callee, qual[-1] if qual else None))

        # ---- float accumulation ----
        if text == "+" and i + 1 < n and body[i + 1].text == "=" and \
                i >= 1 and body[i - 1].kind == "ident" and \
                body[i - 1].text in float_locals:
            accum_hits.append((body[i - 1].text, t.line))

        # ---- ambient type declarations (std::random_device rd;) ----
        if text in AMBIENT_TYPES and t.kind == "ident" and \
                (i + 1 >= n or body[i + 1].text != "("):
            fn.findings.append(Finding(
                "ambient-env", fn.file, t.line, fn,
                f"'{text}' used"))

        i += 1

    if has_parallel_call:
        for name, line in accum_hits:
            fn.findings.append(Finding(
                "parallel-float-accum", fn.file, line, fn,
                f"'{name} +=' float accumulation in a function issuing "
                f"parallel work — reduction order is schedule-dependent"))


def extract_roots(path, tokens):
    """Finds XDEAL_DETERMINISTIC markers and the function name each
    annotates, with the enclosing class tracked by brace scanning."""
    roots = []
    scope = []
    pending = None
    n = len(tokens)
    i = 0
    while i < n:
        t = tokens[i]
        if t.text in ("class", "struct") and t.kind == "ident":
            j = i + 1
            if j < n and tokens[j].kind == "ident":
                k = j
                depth = 0
                while k < n and k - j < 400:
                    tk = tokens[k].text
                    if tk == "<":
                        depth += 1
                    elif tk == ">":
                        depth -= 1
                    elif depth == 0 and tk == "{":
                        pending = tokens[j].text
                        break
                    elif depth == 0 and tk in (";", "("):
                        break
                    k += 1
        elif t.text == "{":
            scope.append(pending)
            pending = None
        elif t.text == "}":
            if scope:
                scope.pop()
        elif t.text == ANNOTATION:
            for j in range(i + 1, min(i + 60, n)):
                if tokens[j].kind == "ident" and \
                        tokens[j].text not in CPP_KEYWORDS and \
                        j + 1 < n and tokens[j + 1].text == "(":
                    cls = next((s for s in reversed(scope) if s), None)
                    roots.append(Root(tokens[j].text, cls, path,
                                      tokens[j].line))
                    break
        i += 1
    return roots


# --------------------------------------------------------------------------
# Optional libclang cross-check
# --------------------------------------------------------------------------


def clang_crosscheck(roots, verbose):
    """If the clang Python bindings are importable, re-verifies that every
    token-frontend root annotation is visible as a clang `annotate`
    attribute spelling in its header (a cheap drift check between the macro
    and the tool). Returns a list of warning strings; never gates."""
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        if verbose:
            print("note: clang python bindings unavailable; "
                  "token frontend only")
        return []
    warnings = []
    for r in roots:
        try:
            with open(r.file) as f:
                lines = f.read().splitlines()
        except OSError:
            continue
        window = "\n".join(lines[max(0, r.line - 3):r.line + 2])
        if ANNOTATION not in window:
            warnings.append(
                f"{r.file}:{r.line}: root '{r.simple_name}' not visibly "
                f"annotated (clang cross-check)")
    return warnings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def enumerate_files(src_roots, compdb):
    files = set()
    if compdb:
        path = compdb
        if os.path.isdir(path):
            path = os.path.join(path, "compile_commands.json")
        with open(path) as f:
            for entry in json.load(f):
                file = os.path.normpath(
                    os.path.join(entry.get("directory", "."), entry["file"]))
                if "/src/" in file and file.endswith(".cc"):
                    files.add(file)
    for root in src_roots:
        for dirpath, _dirs, names in os.walk(root):
            for name in names:
                if name.endswith((".cc", ".h", ".cpp", ".hpp")):
                    files.add(os.path.join(dirpath, name))
    return sorted(files)


def analyze(files, verbose=False):
    registry = ContainerRegistry()
    parsed = []  # (path, tokens)
    for path in files:
        try:
            with open(path) as f:
                raw = f.read()
        except OSError as e:
            print(f"warning: cannot read {path}: {e}", file=sys.stderr)
            continue
        code = strip_to_code(raw)
        tokens = tokenize(code)
        parsed.append((path, tokens, raw))
        registry.collect(tokens)

    functions = []
    roots = []
    all_suppressions = []
    for path, tokens, raw in parsed:
        fns = FileParser(path, tokens).parse()
        for fn in fns:
            analyze_body(fn, tokens, registry)
        functions.extend(fns)
        roots.extend(extract_roots(path, tokens))
        sups = extract_suppressions(raw, path)
        all_suppressions.extend(sups)
        for fn in fns:
            for s in sups:
                if fn.line <= s.line <= fn.end_line:
                    fn.suppressions.append(s)

    # Apply suppressions: a finding is covered by the nearest preceding
    # suppression in the same function (suppression line <= finding line).
    for fn in functions:
        for finding in fn.findings:
            best = None
            for s in fn.suppressions:
                if s.line <= finding.line and \
                        (best is None or s.line > best.line):
                    best = s
            if best is not None:
                finding.suppressed_by = best
                best.used = True

    # Build the call graph index.
    by_simple = {}
    for fn in functions:
        by_simple.setdefault(fn.simple_name, []).append(fn)

    def resolve(call_name, qualifier):
        cands = by_simple.get(call_name, [])
        if qualifier:
            q = [c for c in cands
                 if qualifier in c.qual_name.split("::")]
            if q:
                return q
        return cands

    # Match roots to definitions.
    root_fns = []
    for r in roots:
        cands = by_simple.get(r.simple_name, [])
        if r.class_name:
            scoped = [c for c in cands if c.class_name == r.class_name or
                      r.class_name in c.qual_name.split("::")]
            if scoped:
                cands = scoped
        for c in cands:
            c.is_root = True
        root_fns.extend(cands)
        if not cands and verbose:
            print(f"warning: root '{r.simple_name}' ({r.file}:{r.line}) "
                  f"has no definition in the scanned sources",
                  file=sys.stderr)

    # BFS reachability with parent pointers for path reconstruction.
    parent = {}
    queue = deque()
    for fn in root_fns:
        if fn not in parent:
            parent[fn] = None
            queue.append(fn)
    while queue:
        fn = queue.popleft()
        for call_name, qualifier in fn.calls:
            for callee in resolve(call_name, qualifier):
                if callee not in parent:
                    parent[callee] = fn
                    queue.append(callee)

    def path_of(fn):
        chain = []
        cur = fn
        while cur is not None:
            chain.append(cur.qual_name)
            cur = parent.get(cur)
        return list(reversed(chain))

    return {
        "functions": functions,
        "roots": roots,
        "root_fns": root_fns,
        "reachable": parent,
        "path_of": path_of,
        "suppressions": all_suppressions,
        "registry": registry,
    }


def report(result, include_all=False):
    """Splits findings into (violations, suppressed, unreachable)."""
    violations = []
    suppressed = []
    unreachable = []
    reachable = result["reachable"]
    for fn in result["functions"]:
        for finding in fn.findings:
            if finding.suppressed_by is not None:
                suppressed.append(finding)
            elif fn in reachable:
                violations.append(finding)
            else:
                unreachable.append(finding)
    bad_reasons = [s for s in result["suppressions"] if not s.reason.strip()]
    if include_all:
        violations = violations + unreachable
        unreachable = []
    return violations, suppressed, unreachable, bad_reasons


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="determinism-taint static analyzer (see module "
                    "docstring)")
    ap.add_argument("--src", action="append", default=[],
                    help="source root(s) to scan (default: src/ next to "
                         "this tool's repo)")
    ap.add_argument("--compdb", default=None,
                    help="compile_commands.json (or its directory) to "
                         "enumerate translation units")
    ap.add_argument("--json", dest="json_out", default=None,
                    help="write the full machine-readable report here")
    ap.add_argument("--all", action="store_true",
                    help="gate on every finding, reachable from a root or "
                         "not (nightly / full-audit mode)")
    ap.add_argument("--frontend", choices=["tokens", "clang"],
                    default="tokens",
                    help="'clang' additionally runs the libclang "
                         "cross-check when python3-clang is installed")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)

    src_roots = args.src
    if not src_roots:
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        src_roots = [os.path.join(repo, "src")]

    files = enumerate_files(src_roots, args.compdb)
    if not files:
        print("det-lint: no source files found", file=sys.stderr)
        return 2

    result = analyze(files, verbose=args.verbose)
    violations, suppressed, unreachable, bad_reasons = report(
        result, include_all=args.all)

    clang_warnings = []
    if args.frontend == "clang":
        clang_warnings = clang_crosscheck(result["roots"], args.verbose)

    unused = [s for s in result["suppressions"] if not s.used]

    if args.verbose:
        print(f"det-lint: {len(files)} files, "
              f"{len(result['functions'])} functions, "
              f"{len(result['root_fns'])} root definitions "
              f"({len(result['roots'])} annotations), "
              f"{len(result['reachable'])} functions reachable")

    for s in bad_reasons:
        print(f"{s.file}:{s.line}: error: {SUPPRESSION} with an empty "
              f"reason — every suppression must state its audit argument")
    for v in violations:
        print(f"{v.file}:{v.line}: error: [{v.klass}] {v.detail}")
        print(f"    in {v.func.qual_name}")
        chain = result["path_of"](v.func)
        if len(chain) > 1:
            print(f"    reachable from root via: {' -> '.join(chain)}")
        elif v.func.is_root:
            print("    (the function is itself a deterministic root)")
    for w in clang_warnings:
        print(f"warning: {w}")
    for s in unused:
        print(f"{s.file}:{s.line}: warning: unused {SUPPRESSION} "
              f"(\"{s.reason}\") — no finding in range; delete it or move "
              f"it next to the site it audits")

    if args.json_out:
        doc = {
            "tool": "det-lint",
            "files": len(files),
            "functions": len(result["functions"]),
            "roots": [
                {"name": r.simple_name, "class": r.class_name,
                 "file": r.file, "line": r.line}
                for r in result["roots"]],
            "reachable_functions": len(result["reachable"]),
            "violations": [v.to_json(result["path_of"](v.func))
                           for v in violations],
            "suppressed": [s.to_json() for s in suppressed],
            "unreachable_findings": [u.to_json() for u in unreachable],
            "empty_reason_suppressions": [
                {"file": s.file, "line": s.line} for s in bad_reasons],
            "unused_suppressions": [
                {"file": s.file, "line": s.line, "reason": s.reason}
                for s in unused],
        }
        with open(args.json_out, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")

    if violations or bad_reasons:
        print(f"\nFAILED: {len(violations)} unsuppressed determinism "
              f"finding(s), {len(bad_reasons)} empty-reason "
              f"suppression(s). Canonicalize the order, prove it "
              f"order-insensitive with XDEAL_DET_OK(\"...\"), or keep the "
              f"source off fingerprint paths.")
        return 1
    print(f"OK: no unsuppressed determinism findings "
          f"({len(suppressed)} audited suppression(s), "
          f"{len(unreachable)} finding(s) outside root reach, "
          f"{len(result['reachable'])} functions checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
